#ifndef DYNAPROX_APPSERVER_ORIGIN_SERVER_H_
#define DYNAPROX_APPSERVER_ORIGIN_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "appserver/script_context.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "common/access_log.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "http/message.h"
#include "net/transport.h"
#include "storage/table.h"

namespace dynaprox::net {
struct IngressCounters;
}

namespace dynaprox::appserver {

class PushEngine;

struct OriginOptions {
  // Pads response headers (with an "X-Pad" field) up to this serialized
  // head size in bytes; 0 disables. Used by the sim to realize the paper's
  // header-size parameter f (Table 2: f = 500).
  size_t pad_headers_to_bytes = 0;
  // Serve a JSON status document (origin + BEM counters) at status_path.
  bool enable_status = false;
  std::string status_path = "/_dynaprox/status";
  // Serve the Prometheus text exposition (docs/observability.md) at
  // metrics_path.
  bool enable_metrics = false;
  std::string metrics_path = "/_dynaprox/metrics";
  // Structured JSON access log, one line per request. Not owned; may be
  // null; must outlive the server when set.
  AccessLogger* access_log = nullptr;
  // Time source for latency histograms and log timestamps; defaults to
  // SystemClock. Not owned; must outlive the server when set.
  const Clock* clock = nullptr;
  // When the hosting server enforces net::ServerLimits, exposes its
  // ingress gauges/violation counters in the status document and metric
  // exposition. Not owned; may be null; must outlive the server when set.
  const net::IngressCounters* ingress = nullptr;
  // Block-execution pool: > 0 runs independent cacheable-block miss
  // generators of one page concurrently on this many workers (requires a
  // BEM; ignored in baseline mode). 0 keeps the sequential path.
  // docs/threading-model.md describes the execution model.
  int block_workers = 0;
  // Bounded depth of the block pool's task queue; overflow degrades to
  // caller-runs (sequential) execution, never blocking or dropping.
  size_t block_queue_capacity = 256;
  // Push-based refresh engine for the edge control channel
  // (docs/edge-tier.md). Not owned; may be null (pull-only operation);
  // must outlive the server when set. The caller attaches it to the BEM
  // observer and calls engine->AttachOrigin(server) after construction.
  // Every render records its fragment→request mapping here, and the
  // push metrics/status blocks appear when set. Requires a BEM.
  PushEngine* push_engine = nullptr;
};

struct OriginStats {
  uint64_t requests = 0;
  uint64_t not_found = 0;
  uint64_t script_errors = 0;
  uint64_t refresh_invalidations = 0;  // DPC cold-cache recovery keys.
  uint64_t fragment_hits = 0;
  uint64_t fragment_misses = 0;
  uint64_t fragment_uncacheable = 0;
  uint64_t parallel_blocks = 0;  // Miss generators dispatched to the pool.
  uint64_t body_bytes_sent = 0;
};

// The origin web/application server: dispatches requests to dynamic
// scripts and, when a BEM is attached, serves templates for the DPC to
// assemble. Without a BEM it serves complete pages — the no-cache baseline.
//
// Thread-safe given its collaborators' guarantees: the registry must not
// be mutated while serving; repository and monitor are internally
// synchronized; scripts must only touch request-local state or
// thread-safe services. Serving counters and the BEM-stage latency
// histograms live in a metrics::Registry of relaxed atomics — the serving
// path takes no stats lock. When a request arrives with an
// X-DPC-Request-Id header (set by the DPC), the access-log line carries
// that id so it joins the proxy's line (docs/observability.md).
class OriginServer {
 public:
  // `registry` and `repository` must outlive the server; `monitor` may be
  // null (baseline mode).
  OriginServer(const ScriptRegistry* registry,
               storage::ContentRepository* repository,
               bem::BackEndMonitor* monitor, OriginOptions options = {});

  http::Response Handle(const http::Request& request);

  // Push-engine re-render: dispatches `request` with a fragment capture
  // attached so `captured` receives every (canonical, key, body) the
  // render registered, and discards the response. Bypasses the local
  // status/metrics endpoints and the request counter — control-channel
  // work is not client traffic.
  void HandleCapture(const http::Request& request,
                     std::vector<CapturedFragment>* captured);

  // Adapter for net::TcpServer / net::DirectTransport.
  net::Handler AsHandler();

  // Snapshot of the serving counters.
  OriginStats stats() const;
  bool caching_enabled() const { return monitor_ != nullptr; }
  // The block-execution pool, or null when block_workers == 0 / no BEM.
  common::ThreadPool* block_pool() { return block_pool_.get(); }
  // Every origin metric (counters + BEM-stage latency histograms); what
  // the metrics endpoint renders.
  const metrics::Registry& metrics_registry() const { return registry_mx_; }

 private:
  // Registry-backed handles, resolved once at construction.
  struct Instruments {
    metrics::Counter* requests;
    metrics::Counter* not_found;
    metrics::Counter* script_errors;
    metrics::Counter* refresh_invalidations;
    metrics::Counter* fragment_hits;
    metrics::Counter* fragment_misses;
    metrics::Counter* fragment_uncacheable;
    metrics::Counter* parallel_blocks;
    metrics::Counter* body_bytes_sent;
    metrics::LatencyHistogram* request_duration;
  };

  void RegisterMetrics();
  // The dispatch path proper (everything except the local status/metrics
  // endpoints); `outcome` receives the serving decision for the access
  // log.
  http::Response HandleDispatch(const http::Request& request,
                                const char** outcome,
                                std::vector<CapturedFragment>* capture =
                                    nullptr);
  void ApplyHeaderPadding(http::Response& response) const;
  // Applies X-DPC-Refresh invalidations and returns the canonical ids of
  // the fragments refreshed, to be force-missed in the re-render.
  std::vector<std::string> HandleRefreshHeader(const http::Request& request);
  http::Response RenderStatus() const;

  const ScriptRegistry* registry_;
  storage::ContentRepository* repository_;
  bem::BackEndMonitor* monitor_;
  OriginOptions options_;
  const Clock* clock_;
  std::unique_ptr<common::ThreadPool> block_pool_;  // Null: sequential.
  metrics::Registry registry_mx_;
  Instruments instruments_;
  ScriptMetrics script_metrics_;  // Shared by every request's context.
};

}  // namespace dynaprox::appserver

#endif  // DYNAPROX_APPSERVER_ORIGIN_SERVER_H_
