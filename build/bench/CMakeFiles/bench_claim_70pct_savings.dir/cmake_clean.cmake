file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_70pct_savings.dir/claim_70pct_savings.cc.o"
  "CMakeFiles/bench_claim_70pct_savings.dir/claim_70pct_savings.cc.o.d"
  "bench_claim_70pct_savings"
  "bench_claim_70pct_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_70pct_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
