#include "net/connection_pool.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

#include "common/fault_point.h"
#include "common/strings.h"
#include "http/parser.h"
#include "net/idempotency.h"
#include "net/socket_util.h"

namespace dynaprox::net {
namespace {

// True if the idle keep-alive connection is still usable: the peek sees
// no EOF and no unsolicited bytes (either would leave the HTTP framing
// state unknown).
bool IsConnectionLive(int fd) {
  char byte;
  ssize_t n = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n >= 0) return false;  // 0: EOF. >0: stray bytes from the server.
  return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
}

}  // namespace

ConnectionPool::ConnectionPool(std::string host, uint16_t port,
                               ConnectionPoolOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()) {}

ConnectionPool::~ConnectionPool() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const IdleConn& conn : idle_) ::close(conn.fd);
  idle_.clear();
}

Result<int> ConnectionPool::Dial() {
  MicroTime backoff = options_.connect_retry.initial_backoff_micros;
  int attempts = options_.connect_retry.max_attempts < 1
                     ? 1
                     : options_.connect_retry.max_attempts;
  Status last = Status::Internal("unreachable");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      backoff *= 2;
    }
    if (Status injected =
            chaos::InjectStatus(DYNAPROX_FAULT_POINT("net.connect"));
        !injected.ok()) {
      last = injected;  // Injected dial failure consumes a retry attempt.
      continue;
    }
    Result<int> fd = DialTcp(host_, port_, options_.io_timeout_micros);
    if (fd.ok()) return fd;
    last = fd.status();
  }
  return last;
}

int ConnectionPool::ReapIdleLocked(MicroTime now) {
  if (options_.idle_timeout_micros <= 0) return 0;
  int reaped = 0;
  // Oldest checkins sit at the front of the LIFO free list.
  while (!idle_.empty() &&
         idle_.front().idle_since + options_.idle_timeout_micros <= now) {
    ::close(idle_.front().fd);
    idle_.erase(idle_.begin());
    --open_;
    ++counters_.idle_reaped;
    ++reaped;
  }
  return reaped;
}

int ConnectionPool::ReapIdle() {
  std::lock_guard<std::mutex> lock(mu_);
  return ReapIdleLocked(clock_->NowMicros());
}

Result<ConnectionPool::Connection> ConnectionPool::Checkout() {
  if (Status injected =
          chaos::InjectStatus(DYNAPROX_FAULT_POINT("net.pool.checkout"));
      !injected.ok()) {
    return injected;
  }
  std::unique_lock<std::mutex> lock(mu_);
  const MicroTime wait_start = clock_->NowMicros();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(options_.checkout_timeout_micros);
  bool queued = false;
  bool waited = false;
  auto finish = [&](Connection conn) {
    if (queued) --waiters_;
    ++counters_.checkouts;
    if (waited) {
      counters_.wait_micros.Record(
          static_cast<double>(clock_->NowMicros() - wait_start));
    }
    return conn;
  };
  for (;;) {
    ReapIdleLocked(clock_->NowMicros());
    bool replaced_stale = false;
    while (!idle_.empty()) {
      IdleConn conn = idle_.back();
      idle_.pop_back();
      if (IsConnectionLive(conn.fd)) {
        return finish(Connection{conn.fd, /*fresh=*/false});
      }
      ::close(conn.fd);
      --open_;
      ++counters_.stale_closed;
      replaced_stale = true;
    }
    if (open_ < options_.max_connections) {
      ++open_;  // Reserve the slot while dialing outside the lock.
      lock.unlock();
      Result<int> fd = Dial();
      lock.lock();
      if (!fd.ok()) {
        --open_;
        ++counters_.connect_failures;
        if (queued) --waiters_;
        // The slot just freed may unblock another waiter.
        available_.notify_one();
        return fd.status();
      }
      ++counters_.connects;
      if (replaced_stale) ++counters_.reconnects;
      return finish(Connection{*fd, /*fresh=*/true});
    }
    // Saturated: join the bounded waiter queue.
    if (!queued) {
      if (waiters_ >= options_.max_waiters) {
        ++counters_.waiter_rejections;
        return Status::IoError("connection pool waiter queue full");
      }
      ++waiters_;
      queued = true;
    }
    waited = true;
    if (available_.wait_until(lock, deadline) == std::cv_status::timeout) {
      --waiters_;
      ++counters_.waiter_timeouts;
      counters_.wait_micros.Record(
          static_cast<double>(clock_->NowMicros() - wait_start));
      return Status::IoError("timed out waiting for an upstream connection");
    }
  }
}

void ConnectionPool::Checkin(Connection conn, bool reusable) {
  if (conn.fd < 0) return;
  if (reusable &&
      static_cast<bool>(chaos::ApplyDelay(
          DYNAPROX_FAULT_POINT("net.close")->Evaluate()))) {
    reusable = false;  // Injected close: the keep-alive connection dies.
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (reusable) {
    idle_.push_back({conn.fd, clock_->NowMicros()});
  } else {
    ::close(conn.fd);
    --open_;
  }
  available_.notify_one();
}

PoolStats ConnectionPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats snapshot = counters_;
  snapshot.open_connections = open_;
  snapshot.idle_connections = static_cast<int>(idle_.size());
  snapshot.wait_queue_depth = waiters_;
  return snapshot;
}

PooledClientTransport::PooledClientTransport(std::string host, uint16_t port,
                                             PooledTransportOptions options)
    : options_(std::move(options)),
      pool_(std::move(host), port, options_.pool) {}

Result<http::Response> PooledClientTransport::RoundTrip(
    const http::Request& request) {
  const std::string wire = request.Serialize();
  for (int attempt = 0; attempt < 2; ++attempt) {
    Result<ConnectionPool::Connection> conn = pool_.Checkout();
    if (!conn.ok()) return conn.status();

    size_t sent = 0;
    Status write_status =
        chaos::InjectStatus(DYNAPROX_FAULT_POINT("net.write"));
    if (write_status.ok()) write_status = SendAll(conn->fd, wire, &sent);
    if (!write_status.ok()) {
      pool_.Checkin(*conn, /*reusable=*/false);
      if (!conn->fresh && attempt == 0 &&
          SafeToRetry(request, sent, options_.non_idempotent_headers)) {
        continue;  // Stale keep-alive connection: one fresh retry.
      }
      return write_status;
    }

    http::ResponseReader reader;
    char buf[16 * 1024];
    for (;;) {
      if (auto next = reader.Next()) {
        if (!next->ok()) {
          pool_.Checkin(*conn, /*reusable=*/false);
          return next->status();
        }
        bool server_closes = false;
        if (auto connection = next->value().headers.Get("Connection");
            connection.has_value() &&
            EqualsIgnoreCase(*connection, "close")) {
          server_closes = true;
        }
        pool_.Checkin(*conn, /*reusable=*/!server_closes);
        return std::move(*next);
      }
      if (Status injected =
              chaos::InjectStatus(DYNAPROX_FAULT_POINT("net.read"));
          !injected.ok()) {
        pool_.Checkin(*conn, /*reusable=*/false);
        return injected;
      }
      ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // SO_RCVTIMEO elapsed: fail fast, don't retry into another stall.
        pool_.Checkin(*conn, /*reusable=*/false);
        return Status::IoError("receive timeout");
      }
      if (n < 0) {
        pool_.Checkin(*conn, /*reusable=*/false);
        return ErrnoStatus("recv");
      }
      if (n == 0) {
        pool_.Checkin(*conn, /*reusable=*/false);
        if (reader.buffered_bytes() == 0 && !conn->fresh && attempt == 0 &&
            SafeToRetry(request, wire.size(),
                        options_.non_idempotent_headers)) {
          break;  // Keep-alive closed before the response: retry once.
        }
        return Status::IoError("connection closed mid-response");
      }
      reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }
  return Status::IoError("could not complete round trip");
}

// Body stream over one checked-out pooled connection. Draining to
// end-of-body checks the connection back in reusable (unless the server
// announced "Connection: close" or sent bytes past the body); a read
// error or early destruction checks it in non-reusable, which closes it.
class PooledClientTransport::StreamingBody : public http::BodyStream {
 public:
  StreamingBody(ConnectionPool* pool, ConnectionPool::Connection conn,
                http::StreamingResponseReader reader, bool reusable)
      : pool_(pool),
        conn_(conn),
        reader_(std::move(reader)),
        reusable_(reusable) {}

  ~StreamingBody() override {
    if (!finished_) pool_->Checkin(conn_, /*reusable=*/false);
  }

  Result<common::BufferChain> Next() override {
    if (finished_) return common::BufferChain();
    char buf[16 * 1024];
    for (;;) {
      std::string bytes = reader_.TakeBody();
      if (!bytes.empty()) {
        if (reader_.body_complete()) Finish();
        common::BufferChain out;
        out.Append(common::MakeBuffer(std::move(bytes)));
        return out;
      }
      if (reader_.body_complete()) {
        Finish();
        return common::BufferChain();
      }
      if (Status injected =
              chaos::InjectStatus(DYNAPROX_FAULT_POINT("net.read"));
          !injected.ok()) {
        return Abort(injected);
      }
      ssize_t n = ::recv(conn_.fd, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return Abort(Status::IoError("receive timeout"));
      }
      if (n < 0) return Abort(ErrnoStatus("recv"));
      if (n == 0) {
        return Abort(Status::IoError("connection closed mid-response"));
      }
      reader_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (reader_.failed()) return Abort(reader_.status());
    }
  }

 private:
  void Finish() {
    finished_ = true;
    pool_->Checkin(conn_, reusable_ && reader_.excess_bytes() == 0);
  }

  Status Abort(Status status) {
    finished_ = true;
    pool_->Checkin(conn_, /*reusable=*/false);
    return status;
  }

  ConnectionPool* pool_;
  ConnectionPool::Connection conn_;
  http::StreamingResponseReader reader_;
  bool reusable_;
  bool finished_ = false;
};

Result<StreamingResponse> PooledClientTransport::RoundTripStreaming(
    const http::Request& request) {
  const std::string wire = request.Serialize();
  for (int attempt = 0; attempt < 2; ++attempt) {
    Result<ConnectionPool::Connection> conn = pool_.Checkout();
    if (!conn.ok()) return conn.status();

    size_t sent = 0;
    Status write_status =
        chaos::InjectStatus(DYNAPROX_FAULT_POINT("net.write"));
    if (write_status.ok()) write_status = SendAll(conn->fd, wire, &sent);
    if (!write_status.ok()) {
      pool_.Checkin(*conn, /*reusable=*/false);
      if (!conn->fresh && attempt == 0 &&
          SafeToRetry(request, sent, options_.non_idempotent_headers)) {
        continue;  // Stale keep-alive connection: one fresh retry.
      }
      return write_status;
    }

    http::StreamingResponseReader reader;
    char buf[16 * 1024];
    bool retry = false;
    while (!retry) {
      if (auto head = reader.NextHead()) {
        if (!head->ok()) {
          pool_.Checkin(*conn, /*reusable=*/false);
          return head->status();
        }
        bool reusable = true;
        if (auto connection = head->value().headers.Get("Connection");
            connection.has_value() &&
            EqualsIgnoreCase(*connection, "close")) {
          reusable = false;
        }
        StreamingResponse streaming;
        streaming.head = std::move(head->value());
        streaming.body = std::make_unique<StreamingBody>(
            &pool_, *conn, std::move(reader), reusable);
        return streaming;
      }
      if (Status injected =
              chaos::InjectStatus(DYNAPROX_FAULT_POINT("net.read"));
          !injected.ok()) {
        pool_.Checkin(*conn, /*reusable=*/false);
        return injected;
      }
      ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pool_.Checkin(*conn, /*reusable=*/false);
        return Status::IoError("receive timeout");
      }
      if (n < 0) {
        pool_.Checkin(*conn, /*reusable=*/false);
        return ErrnoStatus("recv");
      }
      if (n == 0) {
        pool_.Checkin(*conn, /*reusable=*/false);
        if (reader.buffered_bytes() == 0 && !conn->fresh && attempt == 0 &&
            SafeToRetry(request, wire.size(),
                        options_.non_idempotent_headers)) {
          retry = true;  // Keep-alive closed before the head: retry once.
          break;
        }
        return Status::IoError("connection closed mid-response");
      }
      reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }
  return Status::IoError("could not complete round trip");
}

}  // namespace dynaprox::net
