#include "edge/edge_origin.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace dynaprox::edge {
namespace {

class EdgeOriginTest : public ::testing::Test {
 protected:
  EdgeOriginTest() {
    registry_.RegisterOrReplace("/x", [](appserver::ScriptContext& ctx) {
      return ctx.CacheableBlock(bem::FragmentId("f"),
                                [](appserver::ScriptContext& block) {
                                  block.Emit("content");
                                  return Status::Ok();
                                });
    });
    bem::BemOptions options;
    options.capacity = 8;
    options.clock = &clock_;
    origin_ = std::make_unique<EdgeOrigin>(&registry_, &repository_,
                                           options);
  }

  http::Request RequestVia(const std::string& edge) {
    http::Request request;
    request.target = "/x";
    request.headers.Add(kEdgeHeader, edge);
    return request;
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<EdgeOrigin> origin_;
};

TEST_F(EdgeOriginTest, AddEdgeRejectsDuplicates) {
  ASSERT_TRUE(origin_->AddEdge("a").ok());
  EXPECT_EQ(origin_->AddEdge("a").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(origin_->edge_count(), 1u);
}

TEST_F(EdgeOriginTest, LookupsForUnknownEdgeFail) {
  EXPECT_TRUE(origin_->MonitorFor("ghost").status().IsNotFound());
  EXPECT_TRUE(origin_->StatsFor("ghost").status().IsNotFound());
}

TEST_F(EdgeOriginTest, RequestsNeedAKnownEdge) {
  ASSERT_TRUE(origin_->AddEdge("a").ok());
  EXPECT_EQ(origin_->Handle(RequestVia("b")).status_code, 400);
  http::Request bare;
  bare.target = "/x";
  EXPECT_EQ(origin_->Handle(bare).status_code, 400);
  EXPECT_EQ(origin_->Handle(RequestVia("a")).status_code, 200);
}

TEST_F(EdgeOriginTest, DirectoriesArePerEdge) {
  ASSERT_TRUE(origin_->AddEdge("a").ok());
  ASSERT_TRUE(origin_->AddEdge("b").ok());
  // Two requests via "a": miss then hit. First via "b": still a miss.
  origin_->Handle(RequestVia("a"));
  origin_->Handle(RequestVia("a"));
  origin_->Handle(RequestVia("b"));
  EXPECT_EQ((*origin_->MonitorFor("a"))->stats().hits, 1u);
  EXPECT_EQ((*origin_->MonitorFor("a"))->stats().misses, 1u);
  EXPECT_EQ((*origin_->MonitorFor("b"))->stats().hits, 0u);
  EXPECT_EQ((*origin_->MonitorFor("b"))->stats().misses, 1u);
  EXPECT_EQ((*origin_->StatsFor("a")).requests, 2u);
}

TEST_F(EdgeOriginTest, PerEdgeKeysAreIndependentSpaces) {
  ASSERT_TRUE(origin_->AddEdge("a").ok());
  ASSERT_TRUE(origin_->AddEdge("b").ok());
  origin_->Handle(RequestVia("a"));
  origin_->Handle(RequestVia("b"));
  // Both edges assigned key 0 in their own directories — fine, since each
  // edge has its own slot array.
  EXPECT_EQ(*(*origin_->MonitorFor("a"))
                 ->directory()
                 .KeyOf(bem::FragmentId("f")),
            0u);
  EXPECT_EQ(*(*origin_->MonitorFor("b"))
                 ->directory()
                 .KeyOf(bem::FragmentId("f")),
            0u);
}

}  // namespace
}  // namespace dynaprox::edge
