#include "bem/push_scheduler.h"

#include "common/fault_point.h"

namespace dynaprox::bem {

PushScheduler::PushScheduler(PushPolicy policy, const Clock* clock,
                             metrics::LatencyHistogram* staleness)
    : policy_(policy),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      staleness_(staleness) {}

void PushScheduler::OnLookup(const std::string& canonical, bool hit) {
  (void)hit;  // Popularity counts demand, not outcome.
  std::lock_guard<std::mutex> lock(mu_);
  ++entries_[canonical].lookups;
}

void PushScheduler::OnInsert(const std::string& canonical, DpcKey key) {
  (void)key;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(canonical);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  // The invalidate→re-insert gap is the window clients could have seen
  // stale-adjacent behaviour (misses back to the origin). Observed for
  // every fragment regardless of admission, so push and pull configs
  // measure staleness identically.
  if (entry.invalidated_at >= 0) {
    if (staleness_ != nullptr) {
      MicroTime gap = clock_->NowMicros() - entry.invalidated_at;
      if (gap < 0) gap = 0;
      staleness_->Observe(static_cast<double>(gap) / kMicrosPerSecond);
    }
    entry.invalidated_at = -1;
  }
  entry.queued = false;
}

void PushScheduler::OnInvalidate(const std::string& canonical) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[canonical];
  ++entry.invalidations;
  // Keep the earliest unserved invalidation: repeated updates before the
  // re-render all count from the moment content first went stale.
  if (entry.invalidated_at < 0) entry.invalidated_at = clock_->NowMicros();
  double score = static_cast<double>(entry.lookups) *
                 static_cast<double>(entry.invalidations);
  if (score < policy_.min_score) {
    ++stats_.skipped_cold;
    return;
  }
  if (entry.queued) return;  // Already pending; one re-render covers both.
  if (static_cast<bool>(chaos::ApplyDelay(
          DYNAPROX_FAULT_POINT("bem.push.admit")->Evaluate()))) {
    // Injected admission failure degrades to pull, like queue overflow.
    ++stats_.dropped;
    return;
  }
  if (queue_.size() >= policy_.queue_capacity) {
    // Drop-to-pull: the fragment stays invalid in the directory and the
    // next client miss regenerates it. Nothing is lost but freshness.
    ++stats_.dropped;
    return;
  }
  queue_.push_back(PushWorkItem{canonical, entry.invalidated_at});
  entry.queued = true;
  ++stats_.enqueued;
}

std::vector<PushWorkItem> PushScheduler::TakeBatch(size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = queue_.size();
  if (max > 0 && max < count) count = max;
  std::vector<PushWorkItem> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

size_t PushScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

PushSchedulerStats PushScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

double PushScheduler::ScoreOf(const std::string& canonical) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(canonical);
  if (it == entries_.end()) return 0.0;
  return static_cast<double>(it->second.lookups) *
         static_cast<double>(it->second.invalidations);
}

}  // namespace dynaprox::bem
