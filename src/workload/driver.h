#ifndef DYNAPROX_WORKLOAD_DRIVER_H_
#define DYNAPROX_WORKLOAD_DRIVER_H_

#include <cstdint>

#include "net/transport.h"
#include "workload/request_stream.h"

namespace dynaprox::workload {

struct DriverStats {
  uint64_t requests = 0;
  uint64_t ok_responses = 0;      // 2xx.
  uint64_t error_responses = 0;   // Everything else.
  uint64_t transport_errors = 0;
  uint64_t response_body_bytes = 0;
};

// Replays `count` requests from `stream` through `transport`, collecting
// client-side statistics. Synchronous (closed-loop, one outstanding
// request), like the WebLoad configuration in the paper's testbed.
DriverStats RunWorkload(net::Transport& transport, RequestStream& stream,
                        uint64_t count);

}  // namespace dynaprox::workload

#endif  // DYNAPROX_WORKLOAD_DRIVER_H_
