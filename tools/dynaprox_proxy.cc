// dynaprox_proxy: runs a Dynamic Proxy Cache (reverse proxy) on a TCP
// port, assembling templates from an upstream dynaprox_origin. The origin
// link is a keep-alive connection pool so concurrent client requests fan
// out instead of serializing on one socket (docs/upstream-pooling.md).
//
//   ./dynaprox_proxy --port=8080 --origin-host=127.0.0.1
//       --origin-port=8081 [--capacity=4096] [--pool-size=8]
//       [--static-cache] [--debug] [--streaming] [--enable-push]
//       [--breaker] [--breaker-window=32] [--breaker-error-threshold=0.5]
//       [--breaker-cooldown-ms=1000]
//       [--serve-stale] [--stale-capacity=256] [--max-stale-sec=0]
//       [--metrics=true] [--access-log=PATH]
//       [--max-connections=0] [--max-inflight=0]
//       [--header-timeout=0] [--idle-timeout=0] [--write-stall-timeout=0]
//       [--max-header-bytes=0] [--max-body-bytes=0] [--drain-timeout=0]
//       [--request-budget-ms=0] [--chaos=SPEC] [--chaos-seed=42]
//
// --request-budget-ms gives every request an end-to-end deadline budget:
// once spent, recovery retries stop and the request degrades (503 +
// Retry-After, or stale with --serve-stale) instead of stacking
// timeouts (docs/failure-modes.md, "Deadline budgets").
//
// --chaos arms deterministic fault injection at the proxy's seams, e.g.
// --chaos=net.read=0.01:error,dpc.stream.chunk=0.001:error with
// --chaos-seed making runs reproducible (docs/failure-modes.md,
// "Chaos layer"). Malformed specs fail startup.
//
// --breaker puts a circuit breaker on the origin link so a dead origin
// fast-fails instead of eating a dial timeout per request; --serve-stale
// answers failed GETs from the last assembled copy of the page
// (docs/failure-modes.md).
//
// --enable-push opens the edge-tier control surface (docs/edge-tier.md):
// POST /_dynaprox/push accepts BEM-pushed fragment bodies (pair with
// dynaprox_origin --push-min-score) and GET /_dynaprox/fragment?key=hex
// serves owned fragments to ring peers.
//
// --streaming turns on streaming scan-and-splice (docs/architecture.md):
// assembled bytes are flushed to the client, chunked, while the template
// tail is still arriving from the origin. Requests are served streamed
// only while --static-cache, --serve-stale, and --debug are all off.
//
// The ingress limits (docs/failure-modes.md) all default to 0 = off:
// --max-connections caps concurrent client connections, --max-inflight
// sheds excess concurrent requests with 503 + Retry-After,
// --header-timeout/--idle-timeout/--write-stall-timeout (milliseconds)
// disconnect slowloris/idle/stalled clients, --max-header-bytes and
// --max-body-bytes reject oversized requests with 431/413, and
// --drain-timeout (milliseconds) makes shutdown drain gracefully:
// accepting stops and in-flight requests finish before the listener
// closes.
//
// A JSON status document is served at /_dynaprox/status and (unless
// --metrics=false) the Prometheus text exposition at /_dynaprox/metrics.
// --access-log=PATH appends one JSON line per proxied request ("-" =
// stderr); see docs/observability.md for the field reference.
//
// Runs until EOF on stdin.

#include <cstdio>
#include <memory>
#include <unistd.h>

#include "bem/protocol.h"
#include "common/access_log.h"
#include "common/fault_point.h"
#include "common/flags.h"
#include "dpc/proxy.h"
#include "net/circuit_breaker.h"
#include "net/connection_pool.h"
#include "net/tcp.h"

using namespace dynaprox;

int main(int argc, char** argv) {
  Result<Flags> flags = Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  Result<int64_t> port = flags->GetInt("port", 8080);
  Result<int64_t> origin_port = flags->GetInt("origin-port", 8081);
  Result<int64_t> capacity = flags->GetInt("capacity", 4096);
  Result<int64_t> pool_size = flags->GetInt("pool-size", 8);
  Result<int64_t> breaker_window = flags->GetInt("breaker-window", 32);
  Result<int64_t> breaker_cooldown_ms =
      flags->GetInt("breaker-cooldown-ms", 1000);
  Result<int64_t> stale_capacity = flags->GetInt("stale-capacity", 256);
  Result<int64_t> max_stale_sec = flags->GetInt("max-stale-sec", 0);
  Result<int64_t> max_connections = flags->GetInt("max-connections", 0);
  Result<int64_t> max_inflight = flags->GetInt("max-inflight", 0);
  Result<int64_t> header_timeout_ms = flags->GetInt("header-timeout", 0);
  Result<int64_t> idle_timeout_ms = flags->GetInt("idle-timeout", 0);
  Result<int64_t> write_stall_ms = flags->GetInt("write-stall-timeout", 0);
  Result<int64_t> max_header_bytes = flags->GetInt("max-header-bytes", 0);
  Result<int64_t> max_body_bytes = flags->GetInt("max-body-bytes", 0);
  Result<int64_t> drain_timeout_ms = flags->GetInt("drain-timeout", 0);
  Result<int64_t> request_budget_ms = flags->GetInt("request-budget-ms", 0);
  Result<int64_t> chaos_seed = flags->GetInt("chaos-seed", 42);
  for (const auto* r : {&port, &origin_port, &capacity, &pool_size,
                        &breaker_window, &breaker_cooldown_ms,
                        &stale_capacity, &max_stale_sec, &max_connections,
                        &max_inflight, &header_timeout_ms, &idle_timeout_ms,
                        &write_stall_ms, &max_header_bytes, &max_body_bytes,
                        &drain_timeout_ms, &request_budget_ms,
                        &chaos_seed}) {
    if (!r->ok()) {
      std::fprintf(stderr, "%s\n", r->status().ToString().c_str());
      return 2;
    }
  }
  Result<double> breaker_error_threshold =
      flags->GetDouble("breaker-error-threshold", 0.5);
  if (!breaker_error_threshold.ok()) {
    std::fprintf(stderr, "%s\n",
                 breaker_error_threshold.status().ToString().c_str());
    return 2;
  }
  std::string origin_host = flags->GetString("origin-host", "127.0.0.1");
  bool enable_breaker = flags->GetBool("breaker");
  bool serve_stale = flags->GetBool("serve-stale");

  if (std::string chaos_spec = flags->GetString("chaos", "");
      !chaos_spec.empty()) {
    Status armed = chaos::FaultRegistry::Instance().Arm(
        chaos_spec, static_cast<uint64_t>(*chaos_seed));
    if (!armed.ok()) {
      std::fprintf(stderr, "--chaos: %s\n", armed.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "chaos armed: %s (seed %lld)\n",
                 chaos_spec.c_str(),
                 static_cast<long long>(*chaos_seed));
  }

  std::unique_ptr<AccessLogger> access_log;
  if (std::string log_path = flags->GetString("access-log", "");
      !log_path.empty()) {
    Result<std::unique_ptr<AccessLogger>> opened =
        AccessLogger::Open(log_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 2;
    }
    access_log = std::move(*opened);
  }

  net::PooledTransportOptions upstream_options;
  upstream_options.pool.max_connections = static_cast<int>(*pool_size);
  // A refreshed GET invalidates fragments at the BEM; never re-send one
  // whose bytes may already have reached the origin.
  upstream_options.non_idempotent_headers = {bem::kRefreshHeader};
  net::PooledClientTransport upstream(
      origin_host, static_cast<uint16_t>(*origin_port), upstream_options);

  // Optional circuit breaker between the DPC and the pool: a dead
  // origin trips it and subsequent requests fast-fail (then serve
  // stale) instead of paying a dial timeout each.
  net::Transport* origin_link = &upstream;
  std::unique_ptr<net::CircuitBreakerTransport> guarded;
  if (enable_breaker) {
    net::CircuitBreakerTransportOptions breaker_options;
    breaker_options.breaker.window = static_cast<int>(*breaker_window);
    breaker_options.breaker.error_threshold = *breaker_error_threshold;
    breaker_options.breaker.cooldown.initial_backoff_micros =
        *breaker_cooldown_ms * kMicrosPerMilli;
    guarded = std::make_unique<net::CircuitBreakerTransport>(
        &upstream, breaker_options);
    origin_link = guarded.get();
  }

  net::IngressCounters ingress;
  net::ServerLimits limits;
  limits.max_connections = static_cast<int>(*max_connections);
  limits.max_inflight = static_cast<int>(*max_inflight);
  limits.max_header_bytes = static_cast<size_t>(*max_header_bytes);
  limits.max_body_bytes = static_cast<size_t>(*max_body_bytes);
  limits.header_timeout_micros = *header_timeout_ms * kMicrosPerMilli;
  limits.idle_timeout_micros = *idle_timeout_ms * kMicrosPerMilli;
  limits.write_stall_micros = *write_stall_ms * kMicrosPerMilli;
  limits.counters = &ingress;

  dpc::ProxyOptions options;
  options.capacity = static_cast<bem::DpcKey>(*capacity);
  options.ingress = &ingress;
  options.add_debug_header = flags->GetBool("debug");
  options.streaming = flags->GetBool("streaming");
  options.enable_static_cache = flags->GetBool("static-cache");
  options.enable_push = flags->GetBool("enable-push");
  options.enable_status = true;
  options.enable_metrics = flags->GetBool("metrics", true);
  options.access_log = access_log.get();
  options.upstream_pool = &upstream.pool();
  options.serve_stale = serve_stale;
  options.stale_cache.capacity = static_cast<size_t>(*stale_capacity);
  options.max_stale_micros = *max_stale_sec * kMicrosPerSecond;
  options.request_budget_micros = *request_budget_ms * kMicrosPerMilli;
  if (guarded != nullptr) options.upstream_breaker = &guarded->breaker();
  dpc::DpcProxy proxy(origin_link, options);

  net::TcpServer server(proxy.AsHandler(), static_cast<uint16_t>(*port),
                        limits);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("DPC listening on 127.0.0.1:%u -> upstream %s:%lld "
              "(capacity %lld, pool %lld%s%s%s%s%s)\n",
              server.port(), origin_host.c_str(),
              static_cast<long long>(*origin_port),
              static_cast<long long>(*capacity),
              static_cast<long long>(*pool_size),
              options.enable_static_cache ? ", static cache on" : "",
              enable_breaker ? ", breaker on" : "",
              serve_stale ? ", serve-stale on" : "",
              options.streaming ? ", streaming on" : "",
              options.enable_push ? ", push endpoint on" : "");
  std::fflush(stdout);

  char buf[256];
  while (::read(STDIN_FILENO, buf, sizeof(buf)) > 0) {
  }
  server.Stop(*drain_timeout_ms * kMicrosPerMilli);
  dpc::ProxyStats stats = proxy.stats();
  net::PoolStats pool_stats = upstream.pool().stats();
  std::printf(
      "served %llu requests: %llu assembled, %llu passthrough, %llu "
      "recoveries, %llu static hits; %llu B from origin, %llu B to "
      "clients (%.1f%% origin-link savings)\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.assembled),
      static_cast<unsigned long long>(stats.passthrough),
      static_cast<unsigned long long>(stats.recoveries),
      static_cast<unsigned long long>(stats.static_hits),
      static_cast<unsigned long long>(stats.bytes_from_upstream),
      static_cast<unsigned long long>(stats.bytes_to_clients),
      stats.bytes_to_clients == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(stats.bytes_from_upstream) /
                               static_cast<double>(stats.bytes_to_clients)));
  if (options.streaming) {
    std::printf(
        "streaming: %llu streamed, %llu prefetch fallbacks, %llu aborts\n",
        static_cast<unsigned long long>(stats.streamed),
        static_cast<unsigned long long>(stats.stream_fallbacks),
        static_cast<unsigned long long>(stats.stream_aborts));
  }
  std::printf(
      "upstream pool: %llu checkouts over %llu connections (%llu "
      "reconnects, %llu stale closed, %llu waiter timeouts)\n",
      static_cast<unsigned long long>(pool_stats.checkouts),
      static_cast<unsigned long long>(pool_stats.connects),
      static_cast<unsigned long long>(pool_stats.reconnects),
      static_cast<unsigned long long>(pool_stats.stale_closed),
      static_cast<unsigned long long>(pool_stats.waiter_timeouts));
  if (options.enable_push) {
    std::printf(
        "edge tier: %llu pushes applied, %llu peer serves\n",
        static_cast<unsigned long long>(stats.pushes_applied),
        static_cast<unsigned long long>(stats.peer_serves));
  }
  if (serve_stale || guarded != nullptr) {
    std::printf(
        "degraded mode: %llu stale pages served, %llu breaker "
        "rejections, %llu 503s\n",
        static_cast<unsigned long long>(stats.stale_served),
        static_cast<unsigned long long>(stats.breaker_rejections),
        static_cast<unsigned long long>(stats.degraded_503s));
  }
  std::printf(
      "ingress: %llu accepted, %llu conn-limit rejections, %llu shed "
      "503s, %llu header timeouts, %llu idle timeouts, %llu oversize "
      "(431+413), %llu drained\n",
      static_cast<unsigned long long>(ingress.accepted_total.load()),
      static_cast<unsigned long long>(
          ingress.connection_limit_rejections.load()),
      static_cast<unsigned long long>(ingress.shed_503s.load()),
      static_cast<unsigned long long>(ingress.header_timeouts.load()),
      static_cast<unsigned long long>(ingress.idle_timeouts.load()),
      static_cast<unsigned long long>(ingress.oversize_headers.load() +
                                      ingress.oversize_bodies.load()),
      static_cast<unsigned long long>(ingress.drained_connections.load()));
  return 0;
}
