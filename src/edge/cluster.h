#ifndef DYNAPROX_EDGE_CLUSTER_H_
#define DYNAPROX_EDGE_CLUSTER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "dpc/proxy.h"
#include "edge/hash_ring.h"
#include "net/byte_meter.h"
#include "net/transport.h"

namespace dynaprox::edge {

struct EdgeClusterOptions {
  // Base options for every node's DPC. The cluster overrides the
  // edge-tier hooks per node (miss_resolver, on_sets, enable_push);
  // everything else is taken as-is. `capacity` must equal the shared
  // BEM's capacity, exactly as for a single DPC.
  dpc::ProxyOptions proxy;
  int ring_vnodes = 40;
  // GET misses consult the fragment's ring owner before falling back to
  // the origin refresh round trip.
  bool peer_fetch = true;
  // After a page assembles, copy each SET fragment to its ring owner so
  // the owner can answer future peer fetches. Requires the buffered
  // assembly path (streaming off) — on_sets does not fire when streaming.
  bool replicate_sets = true;
  // Recent control-channel pushes kept per cluster for failover replay:
  // when a node is marked down, pushes that landed there are re-sent to
  // the failover owner. Bounded; oldest entries fall off.
  size_t replay_capacity = 256;
  // Accounts every peer-channel and control-channel message (both
  // directions share the meter); null disables accounting.
  net::ByteMeter* peer_meter = nullptr;
};

struct ClusterStats {
  uint64_t requests = 0;
  uint64_t routing_failures = 0;    // No live node for a client request.
  uint64_t pushes_routed = 0;       // BEM pushes delivered to an owner.
  uint64_t push_route_failures = 0; // BEM pushes with no routable owner.
  uint64_t push_replays = 0;        // Pushes re-sent after a MarkDown.
  uint64_t replications = 0;        // SET bodies copied to ring owners.
  uint64_t replication_failures = 0;
};

// A DPC edge cluster with consistent-hash *fragment* ownership
// (docs/edge-tier.md): N DpcProxy nodes share one origin (one BEM
// directory), and every dpcKey has an owner node chosen by the ring — so
// the cluster behaves as one logical fragment cache. Client requests
// still route by client affinity (any node can assemble any page); what
// the ring decides is where a fragment's bytes authoritatively live:
//
//   - A node missing a GET fragment asks the key's owner over the peer
//     channel (owner's /_dynaprox/fragment endpoint) before re-missing
//     all the way to the BEM — turning N cold caches into one warm one.
//   - Assembled SETs are replicated to their owners, so ownership holds
//     no matter which node's client populated the fragment first.
//   - BEM-initiated pushes (appserver::PushEngine) enter at ApplyPush,
//     which routes the body to the owning node's push endpoint.
//
// This is a deliberate departure from the paper's "no control messages"
// stance; docs/edge-tier.md states the trade and the failure semantics.
// Node death re-shards ownership via MarkDown (ring walk) and replays
// recent pushes that landed on the dead node to their failover owners.
//
// Thread-safe with the same discipline as EdgeFleet: membership changes
// at setup, MarkDown/MarkUp and Handle may race; node proxies are never
// removed once added.
class EdgeCluster {
 public:
  // `origin` carries template traffic to the shared origin site and must
  // outlive the cluster.
  EdgeCluster(net::Transport* origin, EdgeClusterOptions options);

  // Adds a node to the ring and builds its DPC with the cluster hooks.
  Status AddEdge(const std::string& node);

  // Marks a node down, re-routing both its clients and its fragments,
  // then replays its recently pushed fragments to the failover owners.
  Status MarkDown(const std::string& node);
  Status MarkUp(const std::string& node);

  // Serves one client request through the affinity-routed node's DPC.
  http::Response Handle(const http::Request& request);
  net::Handler AsHandler();

  // Control-channel entry for BEM-initiated pushes: routes `body` to the
  // key's owning node and records it for failover replay. Matches
  // appserver::PushEngine::PushSink modulo the unused canonical.
  Status ApplyPush(bem::DpcKey key, const std::string& body,
                   MicroTime age_micros);

  // Ring namespace for fragment ownership ("k:<hex key>"), distinct from
  // the client-affinity namespace so the two route independently.
  static std::string OwnerKey(bem::DpcKey key);
  // The node currently owning `key`'s fragment.
  Result<std::string> OwnerOf(bem::DpcKey key) const;

  Result<const dpc::DpcProxy*> NodeProxy(const std::string& node) const;
  const HashRing& ring() const { return ring_; }
  ClusterStats stats() const;
  // Cluster-level metrics (dynaprox_edge_cluster_*); each node's DPC
  // additionally exposes its own registry.
  const metrics::Registry& metrics_registry() const { return registry_mx_; }

 private:
  struct Node {
    std::unique_ptr<dpc::DpcProxy> proxy;
    // In-process HTTP channel into this node's DPC, metered so peer and
    // control traffic shows up in the byte accounting.
    std::unique_ptr<net::Transport> channel;
  };
  struct ReplayEntry {
    bem::DpcKey key;
    dpc::FragmentRef body;
    MicroTime age_micros;   // Age when originally pushed.
    MicroTime pushed_at;    // For age adjustment at replay time.
    std::string owner;      // Node the push landed on.
  };

  // Peer-fetch hook for `self`'s DPC: fetch `key` from its ring owner and
  // store it locally (age preserved). NotFound when self owns the key or
  // the owner doesn't have it — the DPC then falls back to origin
  // recovery.
  Result<dpc::FragmentRef> PeerFetch(const std::string& self,
                                     bem::DpcKey key);
  // Replication hook for `self`'s DPC: copy each freshly SET fragment to
  // its ring owner's push endpoint.
  void ReplicateSets(const std::string& self,
                     const std::vector<bem::DpcKey>& keys);
  // Sends one push message to `node`'s push endpoint.
  Status SendPush(const std::string& node, bem::DpcKey key,
                  const std::string& body, MicroTime age_micros);

  net::Transport* origin_;
  EdgeClusterOptions options_;
  const Clock* clock_;
  metrics::Registry registry_mx_;

  // Same locking discipline as EdgeFleet: routing state under mu_,
  // serving outside it (nodes are never removed once added).
  mutable std::mutex mu_;
  HashRing ring_;
  std::map<std::string, Node> nodes_;
  std::deque<ReplayEntry> replay_;
  ClusterStats stats_;
};

}  // namespace dynaprox::edge

#endif  // DYNAPROX_EDGE_CLUSTER_H_
