#ifndef DYNAPROX_NET_EPOLL_SERVER_H_
#define DYNAPROX_NET_EPOLL_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/transport.h"

namespace dynaprox::net {

// Event-driven (epoll, non-blocking) HTTP server: the nginx-style
// alternative to TcpServer's thread-per-connection model. `num_workers`
// event loops share the listening socket via EPOLLEXCLUSIVE; each loop
// owns its connections outright, so no per-connection locking is needed.
//
// The handler runs inline on the event loop. That is the right trade for
// origin-style handlers (fragment generation is CPU work); a handler that
// blocks on its own upstream I/O (e.g. DpcProxy over a slow origin) stalls
// one loop — size num_workers accordingly or use TcpServer there.
class EpollServer {
 public:
  // `port` 0 picks an ephemeral port (see port() after Start()).
  EpollServer(Handler handler, uint16_t port = 0, int num_workers = 1);
  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  // Binds, listens on 127.0.0.1, and spawns the worker loops.
  Status Start();

  // Stops all loops, closes all connections, joins. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Connections accepted over the server's lifetime (all workers).
  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  class Worker;

  Handler handler_;
  uint16_t port_;
  int requested_workers_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> accepted_{0};
  // Set by the first worker that hits EMFILE/ENFILE so the condition is
  // logged once per server, not once per accept round.
  std::atomic<bool> accept_fd_exhaustion_logged_{false};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
};

}  // namespace dynaprox::net

#endif  // DYNAPROX_NET_EPOLL_SERVER_H_
