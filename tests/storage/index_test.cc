#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/table.h"

namespace dynaprox::storage {
namespace {

Row ProductRow(const std::string& category, double price) {
  return {{"category", Value(category)}, {"price", Value(price)}};
}

TEST(IndexTest, CreateIndexBackfillsExistingRows) {
  Table table("products", nullptr);
  ASSERT_TRUE(table.Insert("p1", ProductRow("fiction", 10)).ok());
  ASSERT_TRUE(table.Insert("p2", ProductRow("tech", 20)).ok());
  ASSERT_TRUE(table.Insert("p3", ProductRow("fiction", 30)).ok());
  ASSERT_TRUE(table.CreateIndex("category").ok());
  EXPECT_TRUE(table.HasIndex("category"));
  auto fiction = table.ScanEq("category", Value(std::string("fiction")));
  ASSERT_EQ(fiction.size(), 2u);
  EXPECT_EQ(fiction[0].first, "p1");
  EXPECT_EQ(fiction[1].first, "p3");
  EXPECT_EQ(table.index_lookups(), 1u);
}

TEST(IndexTest, DuplicateCreateFails) {
  Table table("t", nullptr);
  ASSERT_TRUE(table.CreateIndex("c").ok());
  EXPECT_EQ(table.CreateIndex("c").code(), StatusCode::kAlreadyExists);
}

TEST(IndexTest, MaintainedAcrossMutations) {
  Table table("products", nullptr);
  ASSERT_TRUE(table.CreateIndex("category").ok());
  ASSERT_TRUE(table.Insert("p1", ProductRow("fiction", 10)).ok());
  table.Upsert("p2", ProductRow("fiction", 12));
  EXPECT_EQ(table.ScanEq("category", Value(std::string("fiction"))).size(),
            2u);

  // Update moves p1 to another category.
  ASSERT_TRUE(table.Update("p1", ProductRow("tech", 10)).ok());
  EXPECT_EQ(table.ScanEq("category", Value(std::string("fiction"))).size(),
            1u);
  EXPECT_EQ(table.ScanEq("category", Value(std::string("tech"))).size(),
            1u);

  // Delete removes from the index.
  ASSERT_TRUE(table.Delete("p2").ok());
  EXPECT_TRUE(
      table.ScanEq("category", Value(std::string("fiction"))).empty());
}

TEST(IndexTest, RowsWithoutColumnAreUnindexed) {
  Table table("t", nullptr);
  ASSERT_TRUE(table.CreateIndex("category").ok());
  ASSERT_TRUE(table.Insert("bare", {{"other", Value(int64_t{1})}}).ok());
  EXPECT_TRUE(table.ScanEq("category", Value(std::string("x"))).empty());
  // Upsert adds the column later; the row becomes findable.
  table.Upsert("bare", ProductRow("x", 1));
  EXPECT_EQ(table.ScanEq("category", Value(std::string("x"))).size(), 1u);
}

TEST(IndexTest, LimitHonored) {
  Table table("t", nullptr);
  ASSERT_TRUE(table.CreateIndex("c").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table
                    .Insert("k" + std::to_string(i),
                            {{"c", Value(std::string("same"))}})
                    .ok());
  }
  EXPECT_EQ(table.ScanEq("c", Value(std::string("same")), 3).size(), 3u);
}

TEST(IndexTest, NumericAndMixedTypeValues) {
  Table table("t", nullptr);
  ASSERT_TRUE(table.CreateIndex("v").ok());
  ASSERT_TRUE(table.Insert("int", {{"v", Value(int64_t{7})}}).ok());
  ASSERT_TRUE(table.Insert("dbl", {{"v", Value(7.0)}}).ok());
  ASSERT_TRUE(table.Insert("str", {{"v", Value(std::string("7"))}}).ok());
  // Variant equality is type-aware: three distinct index buckets.
  EXPECT_EQ(table.ScanEq("v", Value(int64_t{7})).size(), 1u);
  EXPECT_EQ(table.ScanEq("v", Value(7.0)).size(), 1u);
  EXPECT_EQ(table.ScanEq("v", Value(std::string("7"))).size(), 1u);
}

// Property: indexed and unindexed ScanEq agree under random churn.
TEST(IndexTest, AgreesWithFullScanUnderChurn) {
  Table indexed("a", nullptr);
  Table plain("b", nullptr);
  ASSERT_TRUE(indexed.CreateIndex("cat").ok());
  Rng rng(77);
  const char* kCategories[] = {"x", "y", "z"};
  for (int step = 0; step < 1000; ++step) {
    std::string key = "k" + std::to_string(rng.NextBounded(50));
    switch (rng.NextBounded(3)) {
      case 0:
      case 1: {
        Row row = ProductRow(kCategories[rng.NextBounded(3)],
                             static_cast<double>(rng.NextBounded(100)));
        indexed.Upsert(key, row);
        plain.Upsert(key, row);
        break;
      }
      case 2:
        (void)indexed.Delete(key);
        (void)plain.Delete(key);
        break;
    }
    if (step % 50 == 0) {
      for (const char* category : kCategories) {
        auto a = indexed.ScanEq("cat", Value(std::string(category)));
        auto b = plain.ScanEq("cat", Value(std::string(category)));
        ASSERT_EQ(a.size(), b.size()) << category << " step " << step;
        for (size_t i = 0; i < a.size(); ++i) {
          ASSERT_EQ(a[i].first, b[i].first);
        }
      }
    }
  }
  EXPECT_GT(indexed.index_lookups(), 0u);
}

}  // namespace
}  // namespace dynaprox::storage
