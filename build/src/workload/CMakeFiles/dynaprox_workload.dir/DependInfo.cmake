
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/driver.cc" "src/workload/CMakeFiles/dynaprox_workload.dir/driver.cc.o" "gcc" "src/workload/CMakeFiles/dynaprox_workload.dir/driver.cc.o.d"
  "/root/repo/src/workload/personalized_site.cc" "src/workload/CMakeFiles/dynaprox_workload.dir/personalized_site.cc.o" "gcc" "src/workload/CMakeFiles/dynaprox_workload.dir/personalized_site.cc.o.d"
  "/root/repo/src/workload/request_stream.cc" "src/workload/CMakeFiles/dynaprox_workload.dir/request_stream.cc.o" "gcc" "src/workload/CMakeFiles/dynaprox_workload.dir/request_stream.cc.o.d"
  "/root/repo/src/workload/synthetic_site.cc" "src/workload/CMakeFiles/dynaprox_workload.dir/synthetic_site.cc.o" "gcc" "src/workload/CMakeFiles/dynaprox_workload.dir/synthetic_site.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/dynaprox_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/dynaprox_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dynaprox_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analytical/CMakeFiles/dynaprox_analytical.dir/DependInfo.cmake"
  "/root/repo/build/src/appserver/CMakeFiles/dynaprox_appserver.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/dynaprox_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynaprox_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/bem/CMakeFiles/dynaprox_bem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
