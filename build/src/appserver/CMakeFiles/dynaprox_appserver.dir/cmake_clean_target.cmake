file(REMOVE_RECURSE
  "libdynaprox_appserver.a"
)
