// Origin-failure resilience, end to end: a warmed DPC keeps answering
// from its last-assembled-page cache while the origin is black-holed,
// the circuit breaker stops per-request dial attempts, and the stack
// recovers through half-open probes once the origin returns.

#include <string>

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "bem/protocol.h"
#include "bem/tag_codec.h"
#include "common/clock.h"
#include "dpc/proxy.h"
#include "edge/cluster.h"
#include "net/circuit_breaker.h"
#include "net/fault_injection.h"
#include "net/server_limits.h"
#include "net/transport.h"
#include "storage/table.h"

namespace dynaprox {
namespace {

class FailureResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const std::string path : {"/home", "/products", "/about"}) {
      registry_.RegisterOrReplace(
          path, [path](appserver::ScriptContext& context) {
            return context.CacheableBlock(
                bem::FragmentId("f" + path),
                [path](appserver::ScriptContext& ctx) {
                  ctx.Emit("page:" + path);
                  return Status::Ok();
                });
          });
    }
    bem::BemOptions bem_options;
    bem_options.capacity = 32;
    bem_options.clock = &clock_;
    monitor_ = *bem::BackEndMonitor::Create(bem_options);
    origin_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, monitor_.get());
    direct_ =
        std::make_unique<net::DirectTransport>(origin_->AsHandler());

    fault_ = std::make_unique<net::FaultInjectingTransport>(direct_.get());

    net::CircuitBreakerTransportOptions breaker_options;
    breaker_options.breaker.window = 8;
    breaker_options.breaker.min_samples = 4;
    breaker_options.breaker.error_threshold = 0.5;
    breaker_options.breaker.cooldown = {/*max_attempts=*/4,
                                        /*initial_backoff_micros=*/
                                        100 * kMicrosPerMilli};
    breaker_options.breaker.close_after = 2;
    breaker_options.breaker.clock = &clock_;
    guarded_ = std::make_unique<net::CircuitBreakerTransport>(
        fault_.get(), breaker_options);

    dpc::ProxyOptions proxy_options;
    proxy_options.capacity = 32;
    proxy_options.enable_status = true;
    proxy_options.serve_stale = true;
    proxy_options.stale_cache.clock = &clock_;
    proxy_options.upstream_breaker = &guarded_->breaker();
    proxy_ = std::make_unique<dpc::DpcProxy>(guarded_.get(),
                                             proxy_options);
  }

  http::Request Get(const std::string& target) {
    http::Request request;
    request.target = target;
    return request;
  }

  void WarmProxy() {
    for (const std::string path : {"/home", "/products", "/about"}) {
      http::Response response = proxy_->Handle(Get(path));
      ASSERT_EQ(response.status_code, 200) << path;
      ASSERT_FALSE(response.headers.Has("Warning")) << path;
    }
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<appserver::OriginServer> origin_;
  std::unique_ptr<net::DirectTransport> direct_;
  std::unique_ptr<net::FaultInjectingTransport> fault_;
  std::unique_ptr<net::CircuitBreakerTransport> guarded_;
  std::unique_ptr<dpc::DpcProxy> proxy_;
};

TEST_F(FailureResilienceTest, WarmedProxySurvivesBlackHoledOrigin) {
  WarmProxy();
  fault_->set_down(true);

  // Seen URLs keep answering with the stale assembled page.
  for (int round = 0; round < 10; ++round) {
    for (const std::string path : {"/home", "/products", "/about"}) {
      http::Response response = proxy_->Handle(Get(path));
      EXPECT_EQ(response.status_code, 200) << path;
      EXPECT_EQ(*response.headers.Get("Warning"), dpc::kStaleWarning);
      EXPECT_NE(response.BodyText().find("page:" + path), std::string::npos);
    }
  }
  // Unseen URLs degrade to an honest 503 with Retry-After.
  http::Response unseen = proxy_->Handle(Get("/never-warmed"));
  EXPECT_EQ(unseen.status_code, 503);
  EXPECT_TRUE(unseen.headers.Has("Retry-After"));

  dpc::ProxyStats stats = proxy_->stats();
  EXPECT_EQ(stats.stale_served, 30u);
  EXPECT_GE(stats.degraded_503s, 1u);
}

TEST_F(FailureResilienceTest, BreakerStopsDialAttemptsDuringOutage) {
  WarmProxy();
  fault_->set_down(true);

  // Hammer until the breaker opens, then keep hammering.
  for (int i = 0; i < 40; ++i) proxy_->Handle(Get("/home"));
  ASSERT_EQ(guarded_->breaker().state(), net::BreakerState::kOpen);
  uint64_t dial_failures_at_open = fault_->stats().down_failures;

  for (int i = 0; i < 100; ++i) proxy_->Handle(Get("/home"));
  // Zero per-request dial timeouts once open: the transport never saw
  // the 100 extra requests.
  EXPECT_EQ(fault_->stats().down_failures, dial_failures_at_open);

  dpc::ProxyStats stats = proxy_->stats();
  EXPECT_GE(stats.breaker_rejections, 100u);
  // Every one of them was still answered from the stale page cache.
  EXPECT_EQ(stats.stale_served, 140u);

  // /status surfaces the degradation for operators.
  http::Response status = proxy_->Handle(Get("/_dynaprox/status"));
  ASSERT_EQ(status.status_code, 200);
  EXPECT_NE(status.body.find("\"breaker\":{"), std::string::npos);
  EXPECT_NE(status.body.find("\"state\":\"open\""), std::string::npos);
  EXPECT_NE(status.body.find("\"breaker_rejections\":"),
            std::string::npos);
  EXPECT_EQ(status.body.find("\"breaker_rejections\":0"),
            std::string::npos);
}

TEST_F(FailureResilienceTest, RecoversThroughProbesAfterOriginReturns) {
  WarmProxy();
  fault_->set_down(true);
  for (int i = 0; i < 40; ++i) proxy_->Handle(Get("/home"));
  ASSERT_EQ(guarded_->breaker().state(), net::BreakerState::kOpen);

  fault_->set_down(false);
  // Cooldown may have doubled while the outage persisted; advance past
  // the configured cap (100 ms << 3 = 800 ms).
  clock_.AdvanceMicros(800 * kMicrosPerMilli);

  // close_after=2: the first two requests are the half-open probes.
  http::Response probe1 = proxy_->Handle(Get("/home"));
  EXPECT_EQ(probe1.status_code, 200);
  EXPECT_FALSE(probe1.headers.Has("Warning"));
  http::Response probe2 = proxy_->Handle(Get("/products"));
  EXPECT_EQ(probe2.status_code, 200);
  EXPECT_EQ(guarded_->breaker().state(), net::BreakerState::kClosed);

  // Fully recovered: unseen URLs reach the origin again.
  registry_.RegisterOrReplace(
      "/fresh", [](appserver::ScriptContext& context) {
        context.Emit("fresh page");
        return Status::Ok();
      });
  EXPECT_EQ(proxy_->Handle(Get("/fresh")).status_code, 200);
}

TEST_F(FailureResilienceTest, FlakyOriginStillAssemblesCorrectPages) {
  // 30% transport errors: every successful answer must still be a
  // correctly assembled page, and failures fall back to stale copies.
  net::FaultInjectionOptions fault_options;
  fault_options.error_probability = 0.3;
  fault_options.seed = 42;
  fault_ = std::make_unique<net::FaultInjectingTransport>(direct_.get(),
                                                          fault_options);
  // Rebuild the breaker+proxy over the flaky transport with a high
  // threshold so it stays closed and every request rolls the dice.
  net::CircuitBreakerTransportOptions breaker_options;
  breaker_options.breaker.error_threshold = 1.1;  // Never trips.
  breaker_options.breaker.clock = &clock_;
  guarded_ = std::make_unique<net::CircuitBreakerTransport>(
      fault_.get(), breaker_options);
  dpc::ProxyOptions proxy_options;
  proxy_options.capacity = 32;
  proxy_options.serve_stale = true;
  proxy_options.stale_cache.clock = &clock_;
  proxy_ = std::make_unique<dpc::DpcProxy>(guarded_.get(), proxy_options);

  // Warm the rebuilt proxy past any injected faults so a stale copy
  // exists before the assertion loop.
  http::Response warmed;
  do {
    warmed = proxy_->Handle(Get("/home"));
  } while (warmed.status_code != 200);

  int fresh = 0;
  int stale = 0;
  for (int i = 0; i < 200; ++i) {
    http::Response response = proxy_->Handle(Get("/home"));
    ASSERT_EQ(response.status_code, 200);
    EXPECT_NE(response.BodyText().find("page:/home"), std::string::npos);
    if (response.headers.Has("Warning")) {
      ++stale;
    } else {
      ++fresh;
    }
  }
  EXPECT_GT(fresh, 0);
  EXPECT_GT(stale, 0);
  EXPECT_EQ(fresh + stale, 200);
}

// S2: the three "try again later" paths — ingress shed (max_inflight),
// DPC degraded/breaker 503, and the edge tier's all-nodes-down 503 —
// must all answer through net::MakeUnavailableResponse, so every one of
// them carries Retry-After. Before unification the edge path sent a
// bare 503 that clients could not back off from intelligently.
TEST(UnavailableResponseTest, All503PathsCarryRetryAfter) {
  http::Request request;
  request.target = "/any";

  // 1. Ingress shed: the in-flight gate is already at capacity.
  net::IngressCounters counters;
  counters.inflight_requests = 1;
  net::ServerLimits limits;
  limits.max_inflight = 1;
  limits.retry_after_seconds = 7;
  http::Response shed = net::DispatchAdmitted(
      [](const http::Request&) { return http::Response::MakeOk("never"); },
      request, limits, counters);
  EXPECT_EQ(shed.status_code, 503);
  EXPECT_EQ(*shed.headers.Get("Retry-After"), "7");
  EXPECT_EQ(counters.shed_503s.load(), 1u);

  // 2. DPC degraded: serve_stale on, origin dead, URL never warmed.
  net::DirectTransport dead_upstream([](const http::Request&) {
    return http::Response::MakeOk("unused");
  });
  class DeadTransport : public net::Transport {
   public:
    Result<http::Response> RoundTrip(const http::Request&) override {
      return Status::IoError("origin down");
    }
  } dead;
  dpc::ProxyOptions proxy_options;
  proxy_options.capacity = 8;
  proxy_options.serve_stale = true;
  proxy_options.retry_after_seconds = 7;
  dpc::DpcProxy proxy(&dead, proxy_options);
  http::Response degraded = proxy.Handle(request);
  EXPECT_EQ(degraded.status_code, 503);
  EXPECT_EQ(*degraded.headers.Get("Retry-After"), "7");
  EXPECT_GE(proxy.stats().degraded_503s, 1u);

  // 3. Edge cluster: every node marked down, nothing to route to.
  edge::EdgeClusterOptions cluster_options;
  cluster_options.proxy.capacity = 8;
  cluster_options.proxy.retry_after_seconds = 7;
  edge::EdgeCluster cluster(&dead_upstream, cluster_options);
  ASSERT_TRUE(cluster.AddEdge("edge-1").ok());
  ASSERT_TRUE(cluster.MarkDown("edge-1").ok());
  http::Response routed = cluster.Handle(request);
  EXPECT_EQ(routed.status_code, 503);
  EXPECT_EQ(*routed.headers.Get("Retry-After"), "7");
  EXPECT_EQ(cluster.stats().routing_failures, 1u);
}

// An upstream that never resolves a cold-cache miss: every round trip
// (including X-DPC-Refresh recovery retries) answers a template GETting
// a key it never SETs, and burns simulated time — the stacked-retry
// worst case the deadline budget exists to bound. Optionally serves a
// plain cacheable page first so a stale copy exists.
class UnresolvableMissTransport : public net::Transport {
 public:
  UnresolvableMissTransport(SimClock* clock, MicroTime cost_micros)
      : clock_(clock), cost_micros_(cost_micros) {}

  Result<http::Response> RoundTrip(const http::Request&) override {
    ++round_trips_;
    clock_->AdvanceMicros(cost_micros_);
    if (healthy_) return http::Response::MakeOk("fresh page body");
    std::string body;
    bem::TagCodec::AppendGet(/*key=*/7, body);  // In range, never SET.
    http::Response response = http::Response::MakeOk(std::move(body));
    response.headers.Set(bem::kTemplateHeader, "1");
    return response;
  }

  void set_healthy(bool healthy) { healthy_ = healthy; }
  int round_trips() const { return round_trips_; }

 private:
  SimClock* clock_;
  MicroTime cost_micros_;
  bool healthy_ = false;
  int round_trips_ = 0;
};

// The per-request budget bounds stacked recovery retries end to end:
// each X-DPC-Refresh retry costs a full upstream round trip, so a proxy
// configured to retry 100 times stops the moment the budget is spent
// and answers an honest deadline 503 (with Retry-After) instead of
// compounding per-attempt timeouts.
TEST(DeadlineBudgetTest, StackedRecoveryRetriesStopAtTheBudget) {
  SimClock clock;
  UnresolvableMissTransport upstream(&clock, 40 * kMicrosPerMilli);

  dpc::ProxyOptions options;
  options.capacity = 8;
  options.clock = &clock;
  options.request_budget_micros = 100 * kMicrosPerMilli;
  options.max_recovery_attempts = 100;  // The budget must win, not this.
  options.retry_after_seconds = 3;
  dpc::DpcProxy proxy(&upstream, options);

  http::Request request;
  request.target = "/budgeted";
  http::Response response = proxy.Handle(request);
  EXPECT_EQ(response.status_code, 503);
  ASSERT_TRUE(response.headers.Has("Retry-After"));
  EXPECT_EQ(*response.headers.Get("Retry-After"), "3");
  // 40ms per round trip against a 100ms budget: the fetch plus two
  // recovery retries fit under the pre-attempt check (t=0, 40, 80); the
  // fourth round trip is never made. Without the budget this request
  // would have cost 101 round trips.
  EXPECT_EQ(upstream.round_trips(), 3);
  EXPECT_EQ(proxy.stats().deadline_exceeded, 1u);
}

// With serve_stale on and a warmed page, an exhausted budget degrades
// to the stale copy (200 + Warning) rather than an error: deadline
// pressure prefers useful bytes when any exist.
TEST(DeadlineBudgetTest, ExhaustedBudgetServesStaleWhenWarm) {
  SimClock clock;
  UnresolvableMissTransport upstream(&clock, 40 * kMicrosPerMilli);
  upstream.set_healthy(true);

  dpc::ProxyOptions options;
  options.capacity = 8;
  options.clock = &clock;
  options.serve_stale = true;
  options.stale_cache.clock = &clock;
  options.request_budget_micros = 100 * kMicrosPerMilli;
  options.max_recovery_attempts = 100;
  dpc::DpcProxy proxy(&upstream, options);

  http::Request request;
  request.target = "/warm";
  ASSERT_EQ(proxy.Handle(request).status_code, 200);  // Warm the cache.

  upstream.set_healthy(false);
  http::Response stale = proxy.Handle(request);
  EXPECT_EQ(stale.status_code, 200);
  ASSERT_TRUE(stale.headers.Has("Warning"));
  EXPECT_EQ(*stale.headers.Get("Warning"), dpc::kStaleWarning);
  EXPECT_EQ(stale.BodyText(), "fresh page body");
  EXPECT_EQ(proxy.stats().deadline_exceeded, 1u);
}

}  // namespace
}  // namespace dynaprox
