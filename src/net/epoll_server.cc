#include "net/epoll_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>

#include "common/logging.h"
#include "common/strings.h"
#include "http/parser.h"

namespace dynaprox::net {
namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0) {
    return Errno("fcntl");
  }
  return Status::Ok();
}

}  // namespace

// One event loop: owns an epoll instance and every connection accepted on
// it. Single-threaded by construction.
class EpollServer::Worker {
 public:
  Worker(EpollServer* server, int listen_fd)
      : server_(server), listen_fd_(listen_fd) {}

  ~Worker() {
    for (auto& [fd, conn] : connections_) ::close(fd);
    if (stop_fd_ >= 0) ::close(stop_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  Status Init() {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) return Errno("epoll_create1");
    stop_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (stop_fd_ < 0) return Errno("eventfd");

    epoll_event listen_event{};
    listen_event.events = EPOLLIN | EPOLLEXCLUSIVE;
    listen_event.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen_event) <
        0) {
      return Errno("epoll_ctl(listen)");
    }
    epoll_event stop_event{};
    stop_event.events = EPOLLIN;
    stop_event.data.fd = stop_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, stop_fd_, &stop_event) < 0) {
      return Errno("epoll_ctl(stop)");
    }
    return Status::Ok();
  }

  void RequestStop() {
    uint64_t one = 1;
    ssize_t n = ::write(stop_fd_, &one, sizeof(one));
    (void)n;
  }

  void Run() {
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    for (;;) {
      int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        if (fd == stop_fd_) return;
        if (fd == listen_fd_) {
          AcceptReady();
        } else {
          OnConnectionEvent(fd, events[i].events);
        }
      }
    }
  }

 private:
  struct Connection {
    http::RequestReader reader;
    std::string out;          // Bytes pending write.
    size_t out_offset = 0;
    bool want_write = false;  // EPOLLOUT armed.
    bool close_after_flush = false;
  };

  void AcceptReady() {
    for (;;) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EINTR) continue;  // Interrupted: retry the accept.
        if (errno == ECONNABORTED) continue;  // Peer gave up; next one.
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // Drained.
        if (errno == EMFILE || errno == ENFILE) {
          // Fd exhaustion persists across accept rounds; log it once per
          // server rather than once per event.
          if (!server_->accept_fd_exhaustion_logged_.exchange(true)) {
            DYNAPROX_LOG(kError, "epoll")
                << "accept4: " << std::strerror(errno)
                << " (fd limit reached; dropping new connections)";
          }
          return;
        }
        DYNAPROX_LOG(kWarning, "epoll")
            << "accept4: " << std::strerror(errno);
        return;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      epoll_event event{};
      event.events = EPOLLIN;
      event.data.fd = fd;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
        ::close(fd);
        continue;
      }
      connections_[fd];  // Default-construct state.
      server_->accepted_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void CloseConnection(int fd) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    connections_.erase(fd);
  }

  // Flushes as much of conn.out as the socket accepts; rearms EPOLLOUT as
  // needed. Returns false if the connection died.
  bool Flush(int fd, Connection& conn) {
    while (conn.out_offset < conn.out.size()) {
      ssize_t n = ::send(fd, conn.out.data() + conn.out_offset,
                         conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_offset += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn.want_write) {
          epoll_event event{};
          event.events = EPOLLIN | EPOLLOUT;
          event.data.fd = fd;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event);
          conn.want_write = true;
        }
        return true;
      }
      if (n < 0 && errno == EINTR) continue;
      CloseConnection(fd);
      return false;
    }
    // Fully flushed.
    conn.out.clear();
    conn.out_offset = 0;
    if (conn.want_write) {
      epoll_event event{};
      event.events = EPOLLIN;
      event.data.fd = fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event);
      conn.want_write = false;
    }
    if (conn.close_after_flush) {
      CloseConnection(fd);
      return false;
    }
    return true;
  }

  void OnConnectionEvent(int fd, uint32_t events) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection& conn = it->second;

    if (events & (EPOLLHUP | EPOLLERR)) {
      CloseConnection(fd);
      return;
    }
    if (events & EPOLLOUT) {
      if (!Flush(fd, conn)) return;
    }
    if ((events & EPOLLIN) == 0) return;

    bool peer_eof = false;
    char buf[16 * 1024];
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      if (n == 0) {
        // Half-close: the client is done sending but may still be
        // reading. Serve the buffered pipelined requests and flush
        // conn.out before closing instead of discarding them.
        peer_eof = true;
        break;
      }
      CloseConnection(fd);  // Hard error.
      return;
    }

    // Dispatch every complete request (pipelining supported).
    while (auto next = conn.reader.Next()) {
      if (!next->ok()) {
        http::Response bad = http::Response::MakeError(
            400, "Bad Request", next->status().ToString());
        conn.out += bad.Serialize();
        conn.close_after_flush = true;
        break;
      }
      const http::Request& request = next->value();
      http::Response response = server_->handler_(request);
      if (auto connection = request.headers.Get("Connection");
          connection.has_value() &&
          EqualsIgnoreCase(*connection, "close")) {
        response.headers.Set("Connection", "close");
        conn.close_after_flush = true;
      }
      conn.out += response.Serialize();
      if (conn.close_after_flush) break;
    }
    if (peer_eof) {
      conn.close_after_flush = true;
      if (Flush(fd, conn)) {
        // Still draining. EOF keeps the fd readable (level-triggered), so
        // watch only EPOLLOUT to avoid spinning until the flush finishes.
        epoll_event event{};
        event.events = EPOLLOUT;
        event.data.fd = fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event);
      }
      return;
    }
    Flush(fd, conn);
  }

  EpollServer* server_;
  int listen_fd_;
  int epoll_fd_ = -1;
  int stop_fd_ = -1;
  std::map<int, Connection> connections_;
};

EpollServer::EpollServer(Handler handler, uint16_t port, int num_workers)
    : handler_(std::move(handler)),
      port_(port),
      requested_workers_(num_workers < 1 ? 1 : num_workers) {}

EpollServer::~EpollServer() { Stop(); }

Status EpollServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 256) < 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  DYNAPROX_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  running_.store(true);
  for (int i = 0; i < requested_workers_; ++i) {
    auto worker = std::make_unique<Worker>(this, listen_fd_);
    DYNAPROX_RETURN_IF_ERROR(worker->Init());
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    threads_.emplace_back([w = worker.get()] { w->Run(); });
  }
  return Status::Ok();
}

void EpollServer::Stop() {
  if (!running_.exchange(false)) return;
  for (auto& worker : workers_) worker->RequestStop();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace dynaprox::net
