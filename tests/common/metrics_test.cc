#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dynaprox::metrics {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(LatencyHistogramTest, BoundsAreInclusiveUpperBounds) {
  LatencyHistogram h({1.0, 2.0});
  h.Observe(1.0);  // le="1" (inclusive, Prometheus semantics).
  h.Observe(1.5);  // le="2".
  h.Observe(9.0);  // +Inf.
  LatencyHistogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 11.5);
  EXPECT_DOUBLE_EQ(snap.mean(), 11.5 / 3);
}

TEST(LatencyHistogramTest, EmptySnapshotIsZero) {
  LatencyHistogram h({1.0});
  LatencyHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 0.0);
}

TEST(LatencyHistogramTest, PercentileInterpolatesInsideBucket) {
  LatencyHistogram h({10.0, 20.0});
  // 10 samples in (10, 20]: the median interpolates to the bucket middle,
  // the way Prometheus histogram_quantile() estimates it.
  for (int i = 0; i < 10; ++i) h.Observe(15.0);
  LatencyHistogram::Snapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 20.0);
}

TEST(LatencyHistogramTest, OverflowBucketAnswersHighestBound) {
  LatencyHistogram h({1.0, 2.0});
  h.Observe(100.0);
  EXPECT_DOUBLE_EQ(h.snapshot().Percentile(0.99), 2.0);
}

TEST(LatencyHistogramTest, DefaultBoundsAreSortedAndCoverLatencyRange) {
  const std::vector<double>& bounds =
      LatencyHistogram::DefaultLatencySecondsBounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 0.0001);
  EXPECT_DOUBLE_EQ(bounds.back(), 10.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(RegistryTest, SameNameReturnsSameHandle) {
  Registry registry;
  Counter* a = registry.GetCounter("x_total", "first");
  Counter* b = registry.GetCounter("x_total", "second registration ignored");
  EXPECT_EQ(a, b);
  LatencyHistogram* h1 = registry.GetHistogram("h_seconds", "h", {1.0});
  LatencyHistogram* h2 = registry.GetHistogram("h_seconds", "h", {5.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds().size(), 1u);  // First registration's layout wins.
}

TEST(RegistryTest, EmptyBoundsSelectDefaultLayout) {
  Registry registry;
  LatencyHistogram* h = registry.GetHistogram("h_seconds", "h");
  EXPECT_EQ(h->bounds(), LatencyHistogram::DefaultLatencySecondsBounds());
}

TEST(RegistryTest, ConcurrentIncrementsAndObservationsAllLand) {
  Registry registry;
  Counter* counter = registry.GetCounter("spins_total", "concurrent");
  LatencyHistogram* histogram =
      registry.GetHistogram("spin_seconds", "concurrent", {0.5, 1.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Observe(1.0);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  LatencyHistogram::Snapshot snap = histogram->snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.counts[1], static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(kThreads) * kPerThread);
}

TEST(RegistryTest, ConcurrentRegistrationIsSafeAndStable) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> handles(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      handles[t] = registry.GetCounter("shared_total", "one entry");
      handles[t]->Increment();
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(handles[0]->value(), static_cast<uint64_t>(kThreads));
}

// Golden test: the exact exposition text for one metric of each kind.
// Rendering is registration-ordered, so this output is deterministic.
// If it changes, docs/observability.md's examples need the same change.
TEST(RegistryTest, RenderPrometheusGolden) {
  Registry registry;
  Counter* requests =
      registry.GetCounter("demo_requests_total", "Requests handled.");
  Gauge* depth = registry.GetGauge("demo_queue_depth", "Queued requests.");
  LatencyHistogram* latency = registry.GetHistogram(
      "demo_request_duration_seconds", "Handling latency.",
      {0.0025, 0.01, 0.25});
  registry.RegisterCallbackCounter("demo_evictions_total",
                                   "Entries evicted.", [] { return 7u; });
  registry.RegisterCallbackGauge("demo_error_rate", "Rolling error rate.",
                                 [] { return 0.25; });

  requests->Increment(3);
  depth->Set(2);
  latency->Observe(0.001);   // le="0.0025".
  latency->Observe(0.0025);  // le="0.0025" (inclusive).
  latency->Observe(0.02);    // le="0.25".
  latency->Observe(1.0);     // +Inf.

  EXPECT_EQ(registry.RenderPrometheus(),
            "# HELP demo_requests_total Requests handled.\n"
            "# TYPE demo_requests_total counter\n"
            "demo_requests_total 3\n"
            "# HELP demo_queue_depth Queued requests.\n"
            "# TYPE demo_queue_depth gauge\n"
            "demo_queue_depth 2\n"
            "# HELP demo_request_duration_seconds Handling latency.\n"
            "# TYPE demo_request_duration_seconds histogram\n"
            "demo_request_duration_seconds_bucket{le=\"0.0025\"} 2\n"
            "demo_request_duration_seconds_bucket{le=\"0.01\"} 2\n"
            "demo_request_duration_seconds_bucket{le=\"0.25\"} 3\n"
            "demo_request_duration_seconds_bucket{le=\"+Inf\"} 4\n"
            "demo_request_duration_seconds_sum 1.0235\n"
            "demo_request_duration_seconds_count 4\n"
            "# HELP demo_evictions_total Entries evicted.\n"
            "# TYPE demo_evictions_total counter\n"
            "demo_evictions_total 7\n"
            "# HELP demo_error_rate Rolling error rate.\n"
            "# TYPE demo_error_rate gauge\n"
            "demo_error_rate 0.25\n");
}

TEST(RegistryTest, RenderWholeNumberSamplesHaveNoExponent) {
  Registry registry;
  LatencyHistogram* h = registry.GetHistogram("t_seconds", "t", {1.0});
  h->Observe(1.0);
  h->Observe(1.0);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("t_seconds_sum 2\n"), std::string::npos) << text;
}

}  // namespace
}  // namespace dynaprox::metrics
