file(REMOVE_RECURSE
  "libdynaprox_sim.a"
)
