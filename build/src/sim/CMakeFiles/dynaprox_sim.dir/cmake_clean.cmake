file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_sim.dir/experiment.cc.o"
  "CMakeFiles/dynaprox_sim.dir/experiment.cc.o.d"
  "CMakeFiles/dynaprox_sim.dir/latency.cc.o"
  "CMakeFiles/dynaprox_sim.dir/latency.cc.o.d"
  "CMakeFiles/dynaprox_sim.dir/testbed.cc.o"
  "CMakeFiles/dynaprox_sim.dir/testbed.cc.o.d"
  "libdynaprox_sim.a"
  "libdynaprox_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
