#include "storage/value.h"

#include <cstdio>

namespace dynaprox::storage {

std::string ValueToString(const Value& value) {
  if (const auto* i = std::get_if<int64_t>(&value)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f", *d);
    return buf;
  }
  return std::get<std::string>(value);
}

int64_t GetInt(const Row& row, const std::string& column, int64_t fallback) {
  auto it = row.find(column);
  if (it == row.end()) return fallback;
  const auto* i = std::get_if<int64_t>(&it->second);
  return i != nullptr ? *i : fallback;
}

double GetDouble(const Row& row, const std::string& column, double fallback) {
  auto it = row.find(column);
  if (it == row.end()) return fallback;
  if (const auto* d = std::get_if<double>(&it->second)) return *d;
  if (const auto* i = std::get_if<int64_t>(&it->second)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

std::string GetString(const Row& row, const std::string& column,
                      const std::string& fallback) {
  auto it = row.find(column);
  if (it == row.end()) return fallback;
  const auto* s = std::get_if<std::string>(&it->second);
  return s != nullptr ? *s : fallback;
}

}  // namespace dynaprox::storage
