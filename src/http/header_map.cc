#include "http/header_map.h"

#include "common/strings.h"

namespace dynaprox::http {

void HeaderMap::Add(std::string name, std::string value) {
  fields_.emplace_back(std::move(name), std::move(value));
}

void HeaderMap::Set(std::string name, std::string value) {
  Remove(name);
  Add(std::move(name), std::move(value));
}

std::optional<std::string_view> HeaderMap::Get(std::string_view name) const {
  for (const auto& [field_name, field_value] : fields_) {
    if (EqualsIgnoreCase(field_name, name)) return std::string_view(field_value);
  }
  return std::nullopt;
}

std::vector<std::string_view> HeaderMap::GetAll(std::string_view name) const {
  std::vector<std::string_view> values;
  for (const auto& [field_name, field_value] : fields_) {
    if (EqualsIgnoreCase(field_name, name)) values.push_back(field_value);
  }
  return values;
}

size_t HeaderMap::Remove(std::string_view name) {
  size_t removed = 0;
  for (auto it = fields_.begin(); it != fields_.end();) {
    if (EqualsIgnoreCase(it->first, name)) {
      it = fields_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

size_t HeaderMap::SerializedSize() const {
  size_t total = 0;
  for (const auto& [name, value] : fields_) {
    total += name.size() + 2 + value.size() + 2;  // "Name: value\r\n"
  }
  return total;
}

}  // namespace dynaprox::http
