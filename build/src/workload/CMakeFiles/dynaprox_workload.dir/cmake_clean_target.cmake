file(REMOVE_RECURSE
  "libdynaprox_workload.a"
)
