#include "dpc/assembler.h"

namespace dynaprox::dpc {

Result<AssembledPage> AssemblePage(std::string_view wire,
                                   FragmentStore& store,
                                   ScanStrategy strategy, const Clock* clock,
                                   AssemblyTiming* timing) {
  bool timed = clock != nullptr && timing != nullptr;
  MicroTime start = timed ? clock->NowMicros() : 0;
  std::vector<TemplateSegment> segments;
  DYNAPROX_ASSIGN_OR_RETURN(segments, ParseTemplate(wire, strategy));
  MicroTime scanned = timed ? clock->NowMicros() : 0;
  if (timed) timing->scan_micros = scanned - start;

  AssembledPage out;
  out.page.reserve(wire.size());
  for (TemplateSegment& segment : segments) {
    switch (segment.kind) {
      case TemplateSegment::Kind::kLiteral:
        out.page += segment.text;
        break;
      case TemplateSegment::Kind::kSet: {
        ++out.set_count;
        out.page += segment.text;
        DYNAPROX_RETURN_IF_ERROR(
            store.Set(segment.key, std::move(segment.text)));
        break;
      }
      case TemplateSegment::Kind::kGet: {
        ++out.get_count;
        Result<FragmentRef> content = store.Get(segment.key);
        if (!content.ok()) {
          if (content.status().IsNotFound()) {
            out.missing_keys.push_back(segment.key);
            break;
          }
          return content.status();
        }
        out.page += **content;
        break;
      }
    }
  }
  if (timed) timing->splice_micros = clock->NowMicros() - scanned;
  return out;
}

}  // namespace dynaprox::dpc
