#ifndef DYNAPROX_DPC_ASSEMBLER_H_
#define DYNAPROX_DPC_ASSEMBLER_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "bem/types.h"
#include "common/buffer_chain.h"
#include "common/clock.h"
#include "common/result.h"
#include "dpc/fragment_store.h"
#include "dpc/tag_scanner.h"

namespace dynaprox::dpc {

// Result of assembling one response template. The body is a buffer chain:
// literals alias the retained template wire buffer, GET splices alias the
// store's fragment buffers, and each SET payload is materialized exactly
// once into a buffer shared by the store slot and the chain. Nothing is
// flattened until (unless) a consumer insists on contiguous bytes.
struct AssembledPage {
  common::BufferChain body;
  size_t set_count = 0;
  size_t get_count = 0;
  // dpcKeys whose GET found an empty slot (cold cache). When non-empty the
  // page is incomplete; the proxy triggers miss recovery.
  std::vector<bem::DpcKey> missing_keys;
  // dpcKeys this page stored via SET, in template order. Edge clusters use
  // this to replicate freshly-stored fragments to their ring owner.
  std::vector<bem::DpcKey> set_keys;
  // Copy-elimination accounting: bytes memcpy'd while building this page
  // (SET materialization only) vs bytes spliced in by reference (literals
  // and GET fragments). Feeds the dpc_body_bytes_{copied,referenced}
  // counters.
  size_t bytes_copied = 0;
  size_t bytes_referenced = 0;

  bool complete() const { return missing_keys.empty(); }
  // Flattens the chain; for tests and legacy callers, not the wire path.
  std::string Text() const { return body.Flatten(); }
};

// Stage timing of one AssemblePage call, for the proxy's per-stage
// latency histograms. Three clock reads per page — one per stage
// boundary — so the instrumentation cost is independent of page size.
struct AssemblyTiming {
  MicroTime scan_micros = 0;    // Template scan (ParseTemplate).
  MicroTime splice_micros = 0;  // SET stores + GET splices + literal refs.
};

// Assembles a final page from a BEM template (paper 4.3.2): stores SET
// payloads into `store`, splices GET payloads out of it. Fails only on a
// corrupt template; cold-cache GET misses are reported via `missing_keys`.
// The returned page's chain holds a reference to `wire`, so the template
// bytes stay alive as long as the page does. When `clock` and `timing`
// are both non-null, reports per-stage wall time into `timing`.
Result<AssembledPage> AssemblePage(
    common::Buffer wire, FragmentStore& store,
    ScanStrategy strategy = ScanStrategy::kMemchr,
    const Clock* clock = nullptr, AssemblyTiming* timing = nullptr);

// Convenience overload for callers holding plain bytes: copies `wire`
// into a shared buffer first (the copy is the price of not owning one).
Result<AssembledPage> AssemblePage(
    std::string_view wire, FragmentStore& store,
    ScanStrategy strategy = ScanStrategy::kMemchr,
    const Clock* clock = nullptr, AssemblyTiming* timing = nullptr);

// Running totals of one streamed assembly; same meaning as the
// AssembledPage fields of the buffered path.
struct StreamProgress {
  size_t set_count = 0;
  size_t get_count = 0;
  size_t bytes_copied = 0;
  size_t bytes_referenced = 0;
};

// Incremental counterpart of AssemblePage: wraps a StreamingScanner and
// executes segments against the store the moment they resolve, so
// assembled bytes reach `out` while the rest of the template is still in
// flight. Holdback is the scanner's (open SET body + partial tag), never
// the page.
//
// Cold-cache GET misses differ from the buffered path: there is no
// missing_keys list to report after the fact, because the bytes before
// the miss may already be on the wire. Instead an optional MissResolver
// is consulted inline — the proxy's resolver performs the refresh round
// trip upstream and re-reads the store — and when it is absent (or
// fails) the miss fails the stream.
class StreamingAssembler {
 public:
  // Resolves a GET key the store does not hold. Returning an error aborts
  // the stream with that status.
  using MissResolver = std::function<Result<FragmentRef>(bem::DpcKey)>;

  StreamingAssembler(FragmentStore& store,
                     ScanStrategy strategy = ScanStrategy::kMemchr,
                     MissResolver miss_resolver = nullptr)
      : store_(store),
        scanner_(strategy),
        miss_resolver_(std::move(miss_resolver)) {}

  // Scans `bytes` (which must alias `*owner`), appending every assembled
  // byte that resolves within this chunk to `out`.
  Status Feed(common::Buffer owner, std::string_view bytes,
              common::BufferChain& out);
  // Whole-buffer convenience; `chunk` may be null (empty feed).
  Status Feed(common::Buffer chunk, common::BufferChain& out);

  // Ends the template: flushes the trailing literal, rejects truncation.
  Status Finish(common::BufferChain& out);

  const StreamProgress& progress() const { return progress_; }
  // Bytes held back across chunk boundaries (see StreamingScanner).
  size_t buffered_bytes() const { return scanner_.buffered_bytes(); }

 private:
  Status Execute(std::vector<StreamSegment>& segments,
                 common::BufferChain& out);

  FragmentStore& store_;
  StreamingScanner scanner_;
  MissResolver miss_resolver_;
  StreamProgress progress_;
  std::vector<StreamSegment> segments_;  // Reused across Feed calls.
};

}  // namespace dynaprox::dpc

#endif  // DYNAPROX_DPC_ASSEMBLER_H_
