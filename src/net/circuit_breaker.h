#ifndef DYNAPROX_NET_CIRCUIT_BREAKER_H_
#define DYNAPROX_NET_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "net/retry.h"
#include "net/transport.h"

namespace dynaprox::net {

struct CircuitBreakerOptions {
  // Rolling outcome window (count-based): the error rate is computed over
  // the last `window` recorded round trips.
  int window = 32;
  // Never trip on fewer than this many samples in the window — a single
  // failed request after a quiet period is not an outage.
  int min_samples = 8;
  // Open when the window error rate reaches this fraction.
  double error_threshold = 0.5;
  // Cooldown between open and the first half-open probe, reusing the
  // net/retry.h backoff parameters: initial_backoff_micros is the first
  // cooldown, doubled on every consecutive re-open (a failed probe), and
  // capped at initial_backoff_micros << (max_attempts - 1).
  RetryOptions cooldown{/*max_attempts=*/6,
                        /*initial_backoff_micros=*/kMicrosPerSecond};
  // Trial requests admitted concurrently while half-open.
  int half_open_probes = 1;
  // Consecutive successful probes required to close again.
  int close_after = 2;
  // Time source; null uses SystemClock::Default().
  const Clock* clock = nullptr;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

// "closed" / "open" / "half-open", for logs and the /status document.
std::string_view BreakerStateName(BreakerState state);

struct CircuitBreakerStats {
  BreakerState state = BreakerState::kClosed;
  uint64_t rejections = 0;  // Allow() == false (fast-failed requests).
  uint64_t opens = 0;       // Transitions into open (trips + failed probes).
  uint64_t closes = 0;      // Half-open windows that ended in recovery.
  uint64_t probes = 0;      // Trial requests admitted while half-open.
  int window_samples = 0;
  double window_error_rate = 0.0;  // Over the current rolling window.
};

// Classic three-state circuit breaker guarding an upstream dependency.
//
// Closed: every request is admitted and its outcome recorded in a rolling
// window; when the window error rate reaches the threshold the breaker
// opens, so a dead origin is detected once instead of paying a dial
// timeout per request. Open: requests are rejected instantly until the
// cooldown elapses. Half-open: a bounded number of probe requests test the
// origin; enough consecutive successes close the breaker, any failure
// re-opens it with a doubled cooldown.
//
// Thread-safe; pair each Allow() == true with exactly one Record().
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  // True if the request may proceed. While half-open this reserves one of
  // the probe slots; the caller must Record() the outcome either way.
  bool Allow();

  // Reports the outcome of an admitted request. Results that arrive after
  // the breaker opened (in-flight stragglers) are ignored.
  void Record(bool success);

  BreakerState state() const;
  CircuitBreakerStats stats() const;

 private:
  void OpenLocked(MicroTime now);
  double ErrorRateLocked() const;

  const CircuitBreakerOptions options_;
  const Clock* clock_;
  const MicroTime max_cooldown_;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  std::vector<uint8_t> outcomes_;  // Ring buffer; 1 = error.
  size_t next_slot_ = 0;
  int samples_ = 0;
  int errors_ = 0;
  MicroTime opened_at_ = 0;
  MicroTime cooldown_ = 0;
  int consecutive_opens_ = 0;
  int inflight_probes_ = 0;
  int probe_successes_ = 0;
  uint64_t rejections_ = 0;
  uint64_t opens_ = 0;
  uint64_t closes_ = 0;
  uint64_t probes_ = 0;
};

// Message prefix of the Status a breaker-guarded transport returns while
// rejecting, so callers (the DPC's degraded-mode path) can tell a breaker
// fast-fail from a real upstream error.
inline constexpr char kBreakerOpenMessage[] = "circuit breaker open";

inline bool IsBreakerRejection(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message().rfind(kBreakerOpenMessage, 0) == 0;
}

struct CircuitBreakerTransportOptions {
  CircuitBreakerOptions breaker;
  // Also count HTTP 5xx answers as failures: an origin that dials fine but
  // answers 500s is just as down for the DPC's purposes.
  bool count_http_5xx = true;
};

// Transport decorator gating every round trip through a CircuitBreaker.
// Rejections surface as FailedPrecondition with kBreakerOpenMessage and
// never reach the inner transport (no dial, no timeout).
class CircuitBreakerTransport : public Transport {
 public:
  // `inner` must outlive the decorator.
  CircuitBreakerTransport(Transport* inner,
                          CircuitBreakerTransportOptions options = {});

  Result<http::Response> RoundTrip(const http::Request& request) override;

  CircuitBreaker& breaker() { return breaker_; }
  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  Transport* inner_;
  CircuitBreakerTransportOptions options_;
  CircuitBreaker breaker_;
};

}  // namespace dynaprox::net

#endif  // DYNAPROX_NET_CIRCUIT_BREAKER_H_
