file(REMOVE_RECURSE
  "CMakeFiles/bem_test.dir/bem/cache_directory_test.cc.o"
  "CMakeFiles/bem_test.dir/bem/cache_directory_test.cc.o.d"
  "CMakeFiles/bem_test.dir/bem/dependency_registry_test.cc.o"
  "CMakeFiles/bem_test.dir/bem/dependency_registry_test.cc.o.d"
  "CMakeFiles/bem_test.dir/bem/directory_model_test.cc.o"
  "CMakeFiles/bem_test.dir/bem/directory_model_test.cc.o.d"
  "CMakeFiles/bem_test.dir/bem/free_list_test.cc.o"
  "CMakeFiles/bem_test.dir/bem/free_list_test.cc.o.d"
  "CMakeFiles/bem_test.dir/bem/monitor_test.cc.o"
  "CMakeFiles/bem_test.dir/bem/monitor_test.cc.o.d"
  "CMakeFiles/bem_test.dir/bem/replacement_test.cc.o"
  "CMakeFiles/bem_test.dir/bem/replacement_test.cc.o.d"
  "CMakeFiles/bem_test.dir/bem/sweeper_test.cc.o"
  "CMakeFiles/bem_test.dir/bem/sweeper_test.cc.o.d"
  "CMakeFiles/bem_test.dir/bem/tag_codec_test.cc.o"
  "CMakeFiles/bem_test.dir/bem/tag_codec_test.cc.o.d"
  "CMakeFiles/bem_test.dir/bem/types_test.cc.o"
  "CMakeFiles/bem_test.dir/bem/types_test.cc.o.d"
  "bem_test"
  "bem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
