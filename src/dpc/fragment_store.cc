#include "dpc/fragment_store.h"

namespace dynaprox::dpc {

Status FragmentStore::Set(bem::DpcKey key, std::string content) {
  FragmentRef fresh = std::make_shared<const std::string>(std::move(content));
  std::lock_guard<std::mutex> lock(mu_);
  if (key >= slots_.size()) {
    return Status::InvalidArgument("dpcKey out of range: " +
                                   std::to_string(key));
  }
  FragmentRef& slot = slots_[key];
  if (slot != nullptr) {
    content_bytes_ -= slot->size();
  } else {
    ++occupied_;
  }
  content_bytes_ += fresh->size();
  slot = std::move(fresh);
  ++stats_.sets;
  return Status::Ok();
}

Result<FragmentRef> FragmentStore::Get(bem::DpcKey key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (key >= slots_.size()) {
    return Status::InvalidArgument("dpcKey out of range: " +
                                   std::to_string(key));
  }
  ++stats_.gets;
  const FragmentRef& slot = slots_[key];
  if (slot == nullptr) {
    ++stats_.get_misses;
    return Status::NotFound("empty DPC slot: " + std::to_string(key));
  }
  return slot;
}

void FragmentStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (FragmentRef& slot : slots_) slot.reset();
  occupied_ = 0;
  content_bytes_ = 0;
}

size_t FragmentStore::occupied_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return occupied_;
}

size_t FragmentStore::content_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return content_bytes_;
}

StoreStats FragmentStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dynaprox::dpc
