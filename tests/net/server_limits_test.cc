#include "net/server_limits.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "http/parser.h"
#include "net/epoll_server.h"
#include "net/tcp.h"

namespace dynaprox::net {
namespace {

http::Response EchoHandler(const http::Request& request) {
  return http::Response::MakeOk("path=" + std::string(request.Path()));
}

// Raw loopback socket so tests can speak malformed / partial / slow HTTP
// that TcpClientTransport would never emit.
class RawClient {
 public:
  explicit RawClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(std::string_view bytes) {
    return ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
  }

  // Reads until the peer closes (or `budget` expires); returns all bytes.
  std::string ReadUntilClose(MicroTime budget = 3 * kMicrosPerSecond) {
    timeval tv{};
    tv.tv_sec = budget / kMicrosPerSecond;
    tv.tv_usec = budget % kMicrosPerSecond;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::string out;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  // Reads exactly one HTTP response off the socket.
  Result<http::Response> ReadResponse(
      MicroTime budget = 3 * kMicrosPerSecond) {
    timeval tv{};
    tv.tv_sec = budget / kMicrosPerSecond;
    tv.tv_usec = budget % kMicrosPerSecond;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    http::ResponseReader reader;
    char buf[4096];
    for (;;) {
      if (auto next = reader.Next()) {
        if (!next->ok()) return next->status();
        return std::move(*next);
      }
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return Status::IoError("connection closed / timed out");
      reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

std::string SimpleGet(const std::string& path) {
  return "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n";
}

TEST(ServerLimitsTest, DefaultLimitsChangeNothing) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleGet("/ok")));
  Result<http::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  server.Stop();
}

TEST(ServerLimitsTest, TcpShedsOverInflightCap) {
  ServerLimits limits;
  limits.max_inflight = 1;
  limits.retry_after_seconds = 7;
  TcpServer server(
      [](const http::Request&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        return http::Response::MakeOk("slow");
      },
      0, limits);
  ASSERT_TRUE(server.Start().ok());

  RawClient first(server.port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(first.Send(SimpleGet("/a")));
  // Give the first request time to enter the handler and occupy the slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  RawClient second(server.port());
  ASSERT_TRUE(second.connected());
  ASSERT_TRUE(second.Send(SimpleGet("/b")));
  Result<http::Response> shed = second.ReadResponse();
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status_code, 503);
  EXPECT_EQ(shed->headers.Get("Retry-After").value_or(""), "7");

  Result<http::Response> served = first.ReadResponse();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->status_code, 200);
  EXPECT_EQ(server.ingress().shed_503s.load(), 1u);
  server.Stop();
}

TEST(ServerLimitsTest, TcpRejectsOversizeHeaderWith431) {
  ServerLimits limits;
  limits.max_header_bytes = 512;
  TcpServer server(EchoHandler, 0, limits);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("GET / HTTP/1.1\r\nX-Big: " +
                          std::string(2048, 'h') + "\r\n\r\n"));
  Result<http::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 431);
  EXPECT_EQ(server.ingress().oversize_headers.load(), 1u);
  server.Stop();
}

TEST(ServerLimitsTest, TcpRejectsOversizeDeclaredBodyWith413) {
  ServerLimits limits;
  limits.max_body_bytes = 1024;
  TcpServer server(EchoHandler, 0, limits);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  // The declaration alone must draw the 413 — no body bytes are sent, so
  // a buffering server would instead hang waiting for 100 MB.
  ASSERT_TRUE(client.Send(
      "POST / HTTP/1.1\r\nHost: t\r\nContent-Length: 104857600\r\n\r\n"));
  Result<http::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 413);
  EXPECT_EQ(server.ingress().oversize_bodies.load(), 1u);
  server.Stop();
}

TEST(ServerLimitsTest, TcpDisconnectsSlowlorisAtHeaderDeadline) {
  ServerLimits limits;
  limits.header_timeout_micros = 150 * kMicrosPerMilli;
  TcpServer server(EchoHandler, 0, limits);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Start a request and never finish it.
  ASSERT_TRUE(client.Send("GET /stuck HTTP/1.1\r\nX-Slow: "));
  std::string rest = client.ReadUntilClose();
  EXPECT_TRUE(rest.empty());  // Dropped without a response.
  EXPECT_EQ(server.ingress().header_timeouts.load(), 1u);
  server.Stop();
}

// Drips header bytes at `interval`, each under the header deadline, and
// returns once the server closes the connection (send fails or EOF) or
// `max_drips` are sent. The deadline must bound total time from first
// byte to complete request, so the per-drip resets must not save the
// client.
bool DripUntilClosed(RawClient& client, MicroTime interval_micros,
                     int max_drips) {
  for (int i = 0; i < max_drips; ++i) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(interval_micros));
    if (!client.Send("x")) return true;  // EPIPE: server dropped us.
  }
  return client.ReadUntilClose().empty();
}

TEST(ServerLimitsTest, TcpDisconnectsDrippingSlowloris) {
  // Each drip arrives well inside the deadline; only the total budget
  // from the first byte can catch this client.
  ServerLimits limits;
  limits.header_timeout_micros = 150 * kMicrosPerMilli;
  TcpServer server(EchoHandler, 0, limits);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("GET /drip HTTP/1.1\r\nX-Slow: "));
  EXPECT_TRUE(DripUntilClosed(client, 40 * kMicrosPerMilli, 25));
  EXPECT_EQ(server.ingress().header_timeouts.load(), 1u);
  server.Stop();
}

TEST(ServerLimitsTest, TcpReapsIdleKeepAliveConnections) {
  ServerLimits limits;
  limits.idle_timeout_micros = 150 * kMicrosPerMilli;
  TcpServer server(EchoHandler, 0, limits);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleGet("/once")));
  Result<http::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // Then go quiet between requests: the server reaps the connection.
  std::string rest = client.ReadUntilClose();
  EXPECT_TRUE(rest.empty());
  EXPECT_EQ(server.ingress().idle_timeouts.load(), 1u);
  server.Stop();
}

TEST(ServerLimitsTest, TcpEnforcesConnectionCap) {
  ServerLimits limits;
  limits.max_connections = 1;
  TcpServer server(EchoHandler, 0, limits);
  ASSERT_TRUE(server.Start().ok());

  RawClient occupant(server.port());
  ASSERT_TRUE(occupant.connected());
  ASSERT_TRUE(occupant.Send(SimpleGet("/hold")));
  ASSERT_TRUE(occupant.ReadResponse().ok());  // Admitted and serving.

  RawClient excess(server.port());  // connect() lands in the backlog...
  ASSERT_TRUE(excess.connected());
  excess.Send(SimpleGet("/nope"));
  // ...but accept closes it immediately: EOF, no response.
  std::string rest = excess.ReadUntilClose();
  EXPECT_TRUE(rest.empty());
  EXPECT_GE(server.ingress().connection_limit_rejections.load(), 1u);
  EXPECT_EQ(server.ingress().accepted_total.load(), 1u);
  server.Stop();
}

TEST(ServerLimitsTest, TcpGracefulDrainFinishesInflightRequest) {
  ServerLimits limits;  // Drain needs no other limits configured.
  TcpServer server(
      [](const http::Request&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        return http::Response::MakeOk("finished");
      },
      0, limits);
  ASSERT_TRUE(server.Start().ok());

  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleGet("/inflight")));
  // Let the request reach the handler, then drain while it is running.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  server.Stop(2 * kMicrosPerSecond);

  Result<http::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->body, "finished");
  EXPECT_EQ(response->headers.Get("Connection").value_or(""), "close");
  EXPECT_EQ(server.ingress().drained_connections.load(), 1u);
}

TEST(ServerLimitsTest, TcpDrainClosesIdleConnectionsQuickly) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  RawClient idle(server.port());
  ASSERT_TRUE(idle.connected());
  ASSERT_TRUE(idle.Send(SimpleGet("/warm")));
  ASSERT_TRUE(idle.ReadResponse().ok());
  // The keep-alive connection is now idle; drain must not wait out the
  // full timeout on it.
  auto start = std::chrono::steady_clock::now();
  server.Stop(5 * kMicrosPerSecond);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

TEST(ServerLimitsTest, EpollRejectsOversizeHeaderWith431) {
  ServerLimits limits;
  limits.max_header_bytes = 512;
  EpollServer server(EchoHandler, 0, 1, limits);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("GET / HTTP/1.1\r\nX-Big: " +
                          std::string(2048, 'h') + "\r\n\r\n"));
  Result<http::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 431);
  EXPECT_EQ(server.ingress().oversize_headers.load(), 1u);
  server.Stop();
}

TEST(ServerLimitsTest, EpollDisconnectsSlowlorisAtHeaderDeadline) {
  ServerLimits limits;
  limits.header_timeout_micros = 150 * kMicrosPerMilli;
  EpollServer server(EchoHandler, 0, 1, limits);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("GET /stuck HTTP/1.1\r\nX-Slow: "));
  std::string rest = client.ReadUntilClose();
  EXPECT_TRUE(rest.empty());
  EXPECT_EQ(server.ingress().header_timeouts.load(), 1u);
  server.Stop();
}

TEST(ServerLimitsTest, EpollDisconnectsDrippingSlowloris) {
  ServerLimits limits;
  limits.header_timeout_micros = 150 * kMicrosPerMilli;
  EpollServer server(EchoHandler, 0, 1, limits);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("GET /drip HTTP/1.1\r\nX-Slow: "));
  EXPECT_TRUE(DripUntilClosed(client, 40 * kMicrosPerMilli, 25));
  EXPECT_EQ(server.ingress().header_timeouts.load(), 1u);
  server.Stop();
}

TEST(ServerLimitsTest, EpollCountsLimitViolationOnce) {
  // Packets arriving after a violation already failed the reader must
  // not re-enter dispatch: one violation, one counter bump, one 431.
  ServerLimits limits;
  limits.max_header_bytes = 512;
  EpollServer server(EchoHandler, 0, 1, limits);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("GET / HTTP/1.1\r\nX-Big: " +
                          std::string(2048, 'h')));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Keep flooding the doomed connection in separate packets.
  for (int i = 0; i < 5 && client.Send(std::string(512, 'h')); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::string wire = client.ReadUntilClose();
  EXPECT_NE(wire.find(" 431 "), std::string::npos);
  // Exactly one response on the wire: a second status line would start
  // after the first response's final CRLF.
  EXPECT_EQ(wire.find(" 431 ", wire.find(" 431 ") + 1),
            std::string::npos);
  EXPECT_EQ(server.ingress().oversize_headers.load(), 1u);
  server.Stop();
}

TEST(ServerLimitsTest, EpollEnforcesConnectionCap) {
  ServerLimits limits;
  limits.max_connections = 1;
  EpollServer server(EchoHandler, 0, 1, limits);
  ASSERT_TRUE(server.Start().ok());

  RawClient occupant(server.port());
  ASSERT_TRUE(occupant.connected());
  ASSERT_TRUE(occupant.Send(SimpleGet("/hold")));
  ASSERT_TRUE(occupant.ReadResponse().ok());

  RawClient excess(server.port());
  ASSERT_TRUE(excess.connected());
  excess.Send(SimpleGet("/nope"));
  std::string rest = excess.ReadUntilClose();
  EXPECT_TRUE(rest.empty());
  EXPECT_GE(server.ingress().connection_limit_rejections.load(), 1u);
  server.Stop();
}

TEST(ServerLimitsTest, EpollShedsOverInflightCap) {
  // One inline worker: the gate trips when a second request arrives
  // while the first still occupies the slot. Force that deterministically
  // by taking the slot from outside the event loop.
  ServerLimits limits;
  limits.max_inflight = 1;
  IngressCounters counters;
  limits.counters = &counters;
  EpollServer server(EchoHandler, 0, 1, limits);
  ASSERT_TRUE(server.Start().ok());

  counters.inflight_requests.fetch_add(1);  // Occupy the only slot.
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleGet("/shed-me")));
  Result<http::Response> shed = client.ReadResponse();
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status_code, 503);
  EXPECT_TRUE(shed->headers.Get("Retry-After").has_value());
  EXPECT_EQ(counters.shed_503s.load(), 1u);
  counters.inflight_requests.fetch_sub(1);
  server.Stop();
}

TEST(ServerLimitsTest, EpollGracefulDrainFinishesInflightRequest) {
  EpollServer server(
      [](const http::Request&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        return http::Response::MakeOk("finished");
      },
      0, 1);
  ASSERT_TRUE(server.Start().ok());

  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleGet("/inflight")));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  server.Stop(2 * kMicrosPerSecond);

  Result<http::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->body, "finished");
}

TEST(ServerLimitsTest, ConnectionCapIsPerServerUnderSharedCounters) {
  // Two servers sharing one IngressCounters (the documented tool setup)
  // must each enforce max_connections against their own connections:
  // an occupant on server A must not consume server B's budget.
  IngressCounters counters;
  ServerLimits limits;
  limits.max_connections = 1;
  limits.counters = &counters;
  TcpServer a(EchoHandler, 0, limits);
  TcpServer b(EchoHandler, 0, limits);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());

  RawClient occupant(a.port());
  ASSERT_TRUE(occupant.connected());
  ASSERT_TRUE(occupant.Send(SimpleGet("/hold")));
  ASSERT_TRUE(occupant.ReadResponse().ok());  // A's only slot is taken.

  RawClient fresh(b.port());  // B is empty; the shared gauge reads 1.
  ASSERT_TRUE(fresh.connected());
  ASSERT_TRUE(fresh.Send(SimpleGet("/unrelated")));
  Result<http::Response> response = fresh.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(counters.connection_limit_rejections.load(), 0u);
  a.Stop();
  b.Stop();
}

TEST(ServerLimitsTest, SharedCountersReachTheCaller) {
  // The tools create one IngressCounters and hand it to both the server
  // (which writes it) and the proxy/origin (which exports it): verify the
  // caller-owned instance is the one the server actually updates.
  IngressCounters counters;
  ServerLimits limits;
  limits.counters = &counters;
  TcpServer server(EchoHandler, 0, limits);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleGet("/counted")));
  ASSERT_TRUE(client.ReadResponse().ok());
  EXPECT_EQ(counters.accepted_total.load(), 1u);
  EXPECT_EQ(&server.ingress(), &counters);
  server.Stop();
}

}  // namespace
}  // namespace dynaprox::net
