#include "bem/types.h"

#include <gtest/gtest.h>

namespace dynaprox::bem {
namespace {

TEST(FragmentIdTest, CanonicalWithoutParams) {
  FragmentId id("navbar");
  EXPECT_EQ(id.Canonical(), "navbar");
}

TEST(FragmentIdTest, CanonicalWithParamsSorted) {
  FragmentId id("catalog", {{"page", "2"}, {"categoryID", "Fiction"}});
  // std::map keeps keys sorted, so canonical form is order-insensitive.
  EXPECT_EQ(id.Canonical(), "catalog?categoryID=Fiction&page=2");
}

TEST(FragmentIdTest, ParamOrderDoesNotMatter) {
  FragmentId a("f", {{"x", "1"}, {"y", "2"}});
  FragmentId b("f", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(a.Canonical(), b.Canonical());
  EXPECT_TRUE(a == b);
}

TEST(FragmentIdTest, DifferentParamsDiffer) {
  FragmentId a("f", {{"v", "1"}});
  FragmentId b("f", {{"v", "2"}});
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.Canonical(), b.Canonical());
  EXPECT_TRUE(a < b || b < a);
}

TEST(FragmentIdTest, OrderingIsStrictWeak) {
  FragmentId a("a");
  FragmentId b("b");
  FragmentId a1("a", {{"k", "1"}});
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a < a1);
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace dynaprox::bem
