#include "workload/trace.h"

#include <fstream>

#include "common/strings.h"

namespace dynaprox::workload {

http::Request TraceEntry::ToRequest() const {
  http::Request request;
  request.method = method;
  request.target = target;
  if (!session.empty()) {
    request.headers.Add("Cookie", "sid=" + session);
  }
  return request;
}

TraceEntry TraceEntry::FromRequest(const http::Request& request) {
  TraceEntry entry;
  entry.method = request.method;
  entry.target = request.target;
  if (auto cookie = request.headers.Get("Cookie"); cookie.has_value()) {
    for (std::string_view part : StrSplit(*cookie, ';')) {
      std::string_view trimmed = StripWhitespace(part);
      if (StartsWith(trimmed, "sid=")) {
        entry.session = std::string(trimmed.substr(4));
        break;
      }
    }
  }
  return entry;
}

Status SaveTrace(const std::string& path,
                 const std::vector<TraceEntry>& entries) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open trace for writing: " + path);
  }
  out << "# dynaprox trace v1: METHOD TARGET [sid=SESSION]\n";
  for (const TraceEntry& entry : entries) {
    out << entry.method << ' ' << entry.target;
    if (!entry.session.empty()) out << " sid=" << entry.session;
    out << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::IoError("write failure on trace: " + path);
  }
  return Status::Ok();
}

Result<std::vector<TraceEntry>> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open trace: " + path);
  }
  std::vector<TraceEntry> entries;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view content = StripWhitespace(line);
    if (content.empty() || content[0] == '#') continue;
    std::vector<std::string_view> fields;
    for (std::string_view field : StrSplit(content, ' ')) {
      if (!field.empty()) fields.push_back(field);
    }
    if (fields.size() < 2 || fields.size() > 3) {
      return Status::Corruption("trace line " + std::to_string(line_number) +
                                " malformed: " + std::string(content));
    }
    TraceEntry entry;
    entry.method = std::string(fields[0]);
    entry.target = std::string(fields[1]);
    if (fields.size() == 3) {
      if (!StartsWith(fields[2], "sid=")) {
        return Status::Corruption("trace line " +
                                  std::to_string(line_number) +
                                  " bad session field");
      }
      entry.session = std::string(fields[2].substr(4));
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<http::Request> TraceStream::Next() {
  if (entries_.empty()) {
    return Status::FailedPrecondition("empty trace");
  }
  if (position_ >= entries_.size()) {
    if (!loop_) return Status::FailedPrecondition("trace exhausted");
    position_ = 0;
  }
  return entries_[position_++].ToRequest();
}

}  // namespace dynaprox::workload
