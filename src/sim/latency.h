#ifndef DYNAPROX_SIM_LATENCY_H_
#define DYNAPROX_SIM_LATENCY_H_

#include "analytical/model.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "common/rng.h"

namespace dynaprox::sim {

// End-to-end response-time model for the deployment claim (Sections 1/8:
// "order-of-magnitude reductions in ... end-to-end response times").
//
// The paper's Section 2.2 decomposes latency into network latency and
// server latency (session processing + content generation); generation
// itself spans presentation/business-logic/data-access tiers with
// cross-tier communication. This model prices each component:
//
//   no cache : WAN RTT + firewall scan + script overhead
//              + m * T_gen + transfer(page, LAN) + transfer(page, WAN)
//   with DPC : WAN RTT + firewall scan + 2nd scan at the DPC + assembly
//              + script overhead + misses * T_gen + hits * T_tag
//              + transfer(template, LAN) + transfer(page, WAN)
//
// In reverse-proxy mode the WAN leg is identical in both cases — the
// response-time win comes from skipping content generation (T_gen covers
// the CMS/DBMS/formatting chain of Figure 1) and shrinking the bytes
// pushed through the site infrastructure. Defaults are sized to the
// paper's era (multi-tier generation tens of ms per fragment; see
// DESIGN.md for the calibration argument).
struct LatencyParams {
  // --- network ---
  double wan_rtt_ms = 40.0;
  double wan_bytes_per_ms = 250.0;    // ~2 Mb/s consumer link.
  double lan_rtt_ms = 0.4;            // Site infrastructure hop.
  double lan_bytes_per_ms = 12'500.0; // 100 Mb/s LAN.

  // --- site infrastructure ---
  // Firewall scan cost y per byte; the DPC template scan costs the same
  // (Section 5's z ~= y assumption).
  double scan_ms_per_kilobyte = 0.002;
  // Splicing a cached fragment into the page at the DPC.
  double assembly_ms_per_fragment = 0.02;

  // --- content generation (per Figure 1's nested invocation chain) ---
  double script_overhead_ms = 2.0;    // Script dispatch + session work.
  double fragment_generation_ms = 25.0;  // CMS + JDBC + DBMS + formatting.
  double fragment_tag_emit_ms = 0.01;    // Hit path: directory lookup+tag.

  // Randomness: generation times are exponential around their mean when
  // sampled (heavy upper tail, like real DB-backed generation).
  bool stochastic = true;
};

// Closed-form expected response time (milliseconds) for one page request.
double ExpectedResponseTimeNoCacheMs(const LatencyParams& latency,
                                     const analytical::ModelParams& params);
double ExpectedResponseTimeWithCacheMs(const LatencyParams& latency,
                                       const analytical::ModelParams& params);

// Expected speedup factor (no-cache / with-cache).
double ExpectedSpeedup(const LatencyParams& latency,
                       const analytical::ModelParams& params);

// Samples `requests` response times into histograms (hit outcomes are
// Bernoulli(h) per cacheable fragment; generation times exponential when
// `latency.stochastic`). Useful for percentile comparisons.
struct LatencyDistributions {
  Histogram no_cache_ms;
  Histogram with_cache_ms;
};
LatencyDistributions SampleResponseTimes(
    const LatencyParams& latency, const analytical::ModelParams& params,
    int requests, uint64_t seed);

// Same sampling loop, observing into bucketed metrics histograms (in
// milliseconds) instead of sample-keeping ones — benches that report
// through the shared metrics::LatencyHistogram pipeline use this, so
// their percentiles are computed the same way a scraped
// dynaprox_*_duration_seconds quantile is. Either pointer may be null.
void SampleResponseTimesInto(const LatencyParams& latency,
                             const analytical::ModelParams& params,
                             int requests, uint64_t seed,
                             metrics::LatencyHistogram* no_cache_ms,
                             metrics::LatencyHistogram* with_cache_ms);

}  // namespace dynaprox::sim

#endif  // DYNAPROX_SIM_LATENCY_H_
