#ifndef DYNAPROX_APPSERVER_SCRIPT_REGISTRY_H_
#define DYNAPROX_APPSERVER_SCRIPT_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "appserver/script_context.h"
#include "common/result.h"

namespace dynaprox::appserver {

// A dynamic script: the body of a "JSP/ASP page" in the paper's terms.
// Invoked once per request for its registered path.
using ScriptFn = std::function<Status(ScriptContext&)>;

// Maps request paths to dynamic scripts (the application server's script
// dispatch table). Paths are matched exactly against http::Request::Path().
class ScriptRegistry {
 public:
  // Registers `script` under `path`; AlreadyExists on duplicates.
  Status Register(const std::string& path, ScriptFn script);

  // Replaces or adds.
  void RegisterOrReplace(const std::string& path, ScriptFn script);

  // Finds the script for `path`.
  Result<const ScriptFn*> Find(const std::string& path) const;

  std::vector<std::string> Paths() const;
  size_t size() const { return scripts_.size(); }

 private:
  std::map<std::string, ScriptFn> scripts_;
};

}  // namespace dynaprox::appserver

#endif  // DYNAPROX_APPSERVER_SCRIPT_REGISTRY_H_
