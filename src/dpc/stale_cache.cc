#include "dpc/stale_cache.h"

namespace dynaprox::dpc {

StalePageCache::StalePageCache(StalePageCacheOptions options)
    : options_(options) {
  if (options_.clock == nullptr) options_.clock = SystemClock::Default();
}

void StalePageCache::Remember(const std::string& url,
                              const http::Response& response) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(url);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_position);
    entries_.erase(it);
  }
  lru_.push_front(url);
  Entry& entry = entries_[url] =
      Entry{response, options_.clock->NowMicros(), lru_.begin()};
  // A chained body holds references into the fragment store and the
  // template wire buffer; collapse to one contiguous allocation so a
  // long-retained entry doesn't pin them. The flatten happens at most
  // once per insert — lookups copy the already-flat entry.
  entry.response.FlattenBody();
  ++stats_.remembers;
  while (entries_.size() > options_.capacity && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::optional<StalePage> StalePageCache::Lookup(const std::string& url,
                                                MicroTime max_stale_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(url);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& entry = it->second;
  MicroTime age = options_.clock->NowMicros() - entry.stored_at;
  if (max_stale_micros > 0 && age > max_stale_micros) {
    // Too old even for degraded mode.
    lru_.erase(entry.lru_position);
    entries_.erase(it);
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.erase(entry.lru_position);
  lru_.push_front(url);
  entry.lru_position = lru_.begin();
  return StalePage{entry.response, age};
}

void StalePageCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t StalePageCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

StalePageCacheStats StalePageCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dynaprox::dpc
