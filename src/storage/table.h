#ifndef DYNAPROX_STORAGE_TABLE_H_
#define DYNAPROX_STORAGE_TABLE_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/update_bus.h"
#include "storage/value.h"

namespace dynaprox::storage {

// A named table of rows keyed by a string primary key. Mutations publish
// UpdateEvents on the owning repository's bus. Iteration order is key order
// (deterministic), which keeps generated page content reproducible.
//
// Thread-safe: reads take a shared lock, mutations an exclusive lock.
// Update events are published *after* the lock is released, so subscribers
// (e.g. the BEM) may re-enter the table.
class Table {
 public:
  // `bus` may be null (standalone table with no invalidation wiring).
  Table(std::string name, UpdateBus* bus) : name_(std::move(name)), bus_(bus) {}

  const std::string& name() const { return name_; }
  size_t row_count() const;

  // Inserts a new row; fails with AlreadyExists if `key` is present.
  Status Insert(const std::string& key, Row row);

  // Replaces an existing row; fails with NotFound if `key` is absent.
  Status Update(const std::string& key, Row row);

  // Inserts or replaces.
  void Upsert(const std::string& key, Row row);

  // Removes a row; fails with NotFound if `key` is absent.
  Status Delete(const std::string& key);

  // Point lookup.
  Result<Row> Get(const std::string& key) const;

  bool Contains(const std::string& key) const;

  // Returns (key, row) pairs matching `predicate`, in key order. A null
  // predicate matches everything. `limit` 0 means unlimited.
  using Predicate = std::function<bool(const Row&)>;
  std::vector<std::pair<std::string, Row>> Scan(const Predicate& predicate,
                                                size_t limit = 0) const;

  // Equality scan helper: rows whose `column` equals `value`. Served from
  // a secondary index when one exists on `column`, else by full scan.
  std::vector<std::pair<std::string, Row>> ScanEq(const std::string& column,
                                                  const Value& value,
                                                  size_t limit = 0) const;

  // Builds a hash-map-style equality index on `column`, backfilled from
  // existing rows and maintained on every mutation. AlreadyExists if the
  // column is indexed. Rows lacking the column are simply not indexed.
  Status CreateIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;

  // ScanEq calls answered from an index (observability/testing).
  uint64_t index_lookups() const;

 private:
  void Notify(const std::string& key, UpdateKind kind) const;
  // Index maintenance; callers hold the exclusive lock.
  void IndexInsertLocked(const std::string& key, const Row& row);
  void IndexRemoveLocked(const std::string& key, const Row& row);

  std::string name_;
  UpdateBus* bus_;
  mutable std::shared_mutex mu_;
  std::map<std::string, Row> rows_;
  // column -> value -> sorted row keys.
  std::map<std::string, std::map<Value, std::set<std::string>>> indexes_;
  mutable std::atomic<uint64_t> index_lookups_{0};
};

// The content repository: a set of named tables sharing one UpdateBus.
// Stands in for the Oracle 8.1.6 site content repository in Figure 4.
// Thread-safe; Table pointers remain valid for the repository's lifetime
// (tables are never dropped).
class ContentRepository {
 public:
  // Creates a table; fails with AlreadyExists on a duplicate name.
  Result<Table*> CreateTable(const std::string& name);

  // Looks up a table by name.
  Result<Table*> GetTable(const std::string& name);

  // Creates if absent, otherwise returns the existing table.
  Table* GetOrCreateTable(const std::string& name);

  UpdateBus& bus() { return bus_; }

  std::vector<std::string> TableNames() const;

 private:
  UpdateBus bus_;
  mutable std::mutex mu_;
  std::map<std::string, Table> tables_;
};

}  // namespace dynaprox::storage

#endif  // DYNAPROX_STORAGE_TABLE_H_
