#include "workload/driver.h"

namespace dynaprox::workload {

DriverStats RunWorkload(net::Transport& transport, RequestStream& stream,
                        uint64_t count) {
  DriverStats stats;
  for (uint64_t i = 0; i < count; ++i) {
    ++stats.requests;
    Result<http::Response> response = transport.RoundTrip(stream.Next());
    if (!response.ok()) {
      ++stats.transport_errors;
      continue;
    }
    if (response->status_code >= 200 && response->status_code < 300) {
      ++stats.ok_responses;
    } else {
      ++stats.error_responses;
    }
    stats.response_body_bytes += response->body_size();
  }
  return stats;
}

}  // namespace dynaprox::workload
