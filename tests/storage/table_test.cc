#include "storage/table.h"

#include <gtest/gtest.h>

namespace dynaprox::storage {
namespace {

Row MakeRow(const std::string& title, int64_t n) {
  Row row;
  row["title"] = title;
  row["n"] = n;
  return row;
}

TEST(TableTest, InsertGetRoundTrip) {
  Table table("t", nullptr);
  ASSERT_TRUE(table.Insert("k1", MakeRow("a", 1)).ok());
  Result<Row> row = table.Get("k1");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(GetString(*row, "title"), "a");
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TableTest, InsertDuplicateFails) {
  Table table("t", nullptr);
  ASSERT_TRUE(table.Insert("k", MakeRow("a", 1)).ok());
  EXPECT_EQ(table.Insert("k", MakeRow("b", 2)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(GetString(*table.Get("k"), "title"), "a");
}

TEST(TableTest, UpdateRequiresExistingRow) {
  Table table("t", nullptr);
  EXPECT_TRUE(table.Update("k", MakeRow("a", 1)).IsNotFound());
  ASSERT_TRUE(table.Insert("k", MakeRow("a", 1)).ok());
  ASSERT_TRUE(table.Update("k", MakeRow("b", 2)).ok());
  EXPECT_EQ(GetString(*table.Get("k"), "title"), "b");
}

TEST(TableTest, UpsertInsertsThenReplaces) {
  Table table("t", nullptr);
  table.Upsert("k", MakeRow("a", 1));
  table.Upsert("k", MakeRow("b", 2));
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(GetInt(*table.Get("k"), "n"), 2);
}

TEST(TableTest, DeleteRemovesRow) {
  Table table("t", nullptr);
  ASSERT_TRUE(table.Insert("k", MakeRow("a", 1)).ok());
  ASSERT_TRUE(table.Delete("k").ok());
  EXPECT_TRUE(table.Get("k").status().IsNotFound());
  EXPECT_TRUE(table.Delete("k").IsNotFound());
  EXPECT_FALSE(table.Contains("k"));
}

TEST(TableTest, ScanFiltersAndLimits) {
  Table table("t", nullptr);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        table.Insert("k" + std::to_string(i), MakeRow("row", i)).ok());
  }
  auto even = table.Scan(
      [](const Row& row) { return GetInt(row, "n") % 2 == 0; });
  EXPECT_EQ(even.size(), 5u);
  auto limited = table.Scan(nullptr, 3);
  EXPECT_EQ(limited.size(), 3u);
  auto all = table.Scan(nullptr);
  EXPECT_EQ(all.size(), 10u);
  // Deterministic key order.
  EXPECT_EQ(all.front().first, "k0");
}

TEST(TableTest, ScanEqMatchesColumn) {
  Table table("t", nullptr);
  ASSERT_TRUE(table.Insert("a", MakeRow("fiction", 1)).ok());
  ASSERT_TRUE(table.Insert("b", MakeRow("science", 2)).ok());
  ASSERT_TRUE(table.Insert("c", MakeRow("fiction", 3)).ok());
  auto matches = table.ScanEq("title", Value(std::string("fiction")));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].first, "a");
  EXPECT_EQ(matches[1].first, "c");
}

TEST(TableTest, MutationsPublishEvents) {
  UpdateBus bus;
  std::vector<UpdateEvent> events;
  bus.Subscribe([&](const UpdateEvent& e) { events.push_back(e); });
  Table table("products", &bus);

  ASSERT_TRUE(table.Insert("p1", MakeRow("a", 1)).ok());
  ASSERT_TRUE(table.Update("p1", MakeRow("b", 2)).ok());
  table.Upsert("p2", MakeRow("c", 3));
  ASSERT_TRUE(table.Delete("p1").ok());

  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, UpdateKind::kInsert);
  EXPECT_EQ(events[1].kind, UpdateKind::kUpdate);
  EXPECT_EQ(events[2].kind, UpdateKind::kInsert);  // Upsert of new key.
  EXPECT_EQ(events[3].kind, UpdateKind::kDelete);
  EXPECT_EQ(events[0].table, "products");
  EXPECT_EQ(events[0].key, "p1");
}

TEST(ContentRepositoryTest, CreateAndLookupTables) {
  ContentRepository repository;
  Result<Table*> created = repository.CreateTable("users");
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(repository.CreateTable("users").status().code(),
            StatusCode::kAlreadyExists);
  Result<Table*> found = repository.GetTable("users");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*created, *found);
  EXPECT_TRUE(repository.GetTable("missing").status().IsNotFound());
  EXPECT_EQ(repository.GetOrCreateTable("users"), *found);
  repository.GetOrCreateTable("extra");
  EXPECT_EQ(repository.TableNames().size(), 2u);
}

TEST(ContentRepositoryTest, TablesShareTheBus) {
  ContentRepository repository;
  int events = 0;
  repository.bus().Subscribe([&](const UpdateEvent&) { ++events; });
  repository.GetOrCreateTable("a")->Upsert("x", {});
  repository.GetOrCreateTable("b")->Upsert("y", {});
  EXPECT_EQ(events, 2);
}

}  // namespace
}  // namespace dynaprox::storage
