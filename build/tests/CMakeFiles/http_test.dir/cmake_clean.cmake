file(REMOVE_RECURSE
  "CMakeFiles/http_test.dir/http/cache_control_test.cc.o"
  "CMakeFiles/http_test.dir/http/cache_control_test.cc.o.d"
  "CMakeFiles/http_test.dir/http/chunked_test.cc.o"
  "CMakeFiles/http_test.dir/http/chunked_test.cc.o.d"
  "CMakeFiles/http_test.dir/http/header_map_test.cc.o"
  "CMakeFiles/http_test.dir/http/header_map_test.cc.o.d"
  "CMakeFiles/http_test.dir/http/message_test.cc.o"
  "CMakeFiles/http_test.dir/http/message_test.cc.o.d"
  "CMakeFiles/http_test.dir/http/normalize_path_test.cc.o"
  "CMakeFiles/http_test.dir/http/normalize_path_test.cc.o.d"
  "CMakeFiles/http_test.dir/http/parser_test.cc.o"
  "CMakeFiles/http_test.dir/http/parser_test.cc.o.d"
  "http_test"
  "http_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
