#ifndef DYNAPROX_HTTP_MESSAGE_H_
#define DYNAPROX_HTTP_MESSAGE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/buffer_chain.h"
#include "common/result.h"
#include "http/header_map.h"

namespace dynaprox::http {

// An HTTP/1.1 request. `target` is the request-target as it appears on the
// request line (path plus optional "?query").
struct Request {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  // Path component of the target (before '?').
  std::string_view Path() const;

  // Raw query string (after '?', empty if none).
  std::string_view QueryString() const;

  // Decoded query parameters in target order; later duplicates win.
  std::map<std::string, std::string> QueryParams() const;

  // Serializes to wire form, adding Content-Length when a body is present
  // and none is set.
  std::string Serialize() const;

  // Bytes Serialize() would produce.
  size_t SerializedSize() const;
};

// Pull source for a response body produced incrementally (streamed page
// assembly, proxied upstream bodies). Next() blocks until at least one
// byte is available and returns it as a zero-copy chain; an empty chain
// signals the end of the body. An error aborts the stream: a server then
// closes the connection without the final chunk frame, so the client sees
// a truncated chunked body instead of a complete-looking response.
class BodyStream {
 public:
  virtual ~BodyStream() = default;
  virtual Result<common::BufferChain> Next() = 0;
};

// An HTTP/1.1 response. The body has two representations: the contiguous
// `body` string, and the zero-copy `body_chain` of shared buffer slices
// (assembled pages, spliced fragments). A non-empty chain IS the body —
// it takes precedence over `body`, which is then ignored by every
// serializer and accessor below. Producers set exactly one of the two.
//
// A third, streaming representation exists for servers only: when
// `body_stream` is non-null, `body`/`body_chain` are empty and the body
// arrives by pulling the stream. net::TcpServer and net::EpollServer send
// such responses with chunked framing as chunks resolve; the serializers
// and accessors below ignore the stream (they cover the buffered
// representations), so in-process consumers must drain it themselves.
struct Response {
  int status_code = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;
  common::BufferChain body_chain;
  std::shared_ptr<BodyStream> body_stream;

  // Body size regardless of representation.
  size_t body_size() const {
    return body_chain.empty() ? body.size() : body_chain.size();
  }

  // Body bytes as a contiguous string (flattens a chained body — for
  // in-process consumers and tests, not the socket path).
  std::string BodyText() const {
    return body_chain.empty() ? body : body_chain.Flatten();
  }

  // Collapses a chained body into `body` (idempotent). Used where a
  // response is retained long-term in one contiguous allocation (stale
  // page cache) — at most one flatten per cached entry.
  void FlattenBody();

  // Status line + headers (Content-Length added if absent) + blank line,
  // without the body.
  std::string SerializeHead() const;

  // Full wire form as one contiguous string (copies a chained body).
  std::string Serialize() const;

  // Full wire form as a chain: one owned buffer for the head, then the
  // body as shared slices. The zero-copy socket path.
  common::BufferChain SerializeToChain() const;

  size_t SerializedSize() const;

  static Response MakeOk(std::string body,
                         std::string content_type = "text/html");
  static Response MakeError(int code, std::string reason, std::string body);
};

// Returns the canonical reason phrase for common status codes ("OK",
// "Not Found", ...), or "Unknown" otherwise.
std::string_view CanonicalReason(int status_code);

// Percent-decodes `s` ('+' becomes space). Invalid escapes pass through.
std::string UrlDecode(std::string_view s);

// Percent-encodes characters outside the URL-safe set.
std::string UrlEncode(std::string_view s);

// Parses "a=1&b=2" into a map (decoded); later duplicates win.
std::map<std::string, std::string> ParseQueryString(std::string_view query);

// Normalizes a request path: resolves "." and ".." segments (never above
// the root), collapses duplicate slashes, and ensures a leading '/'.
// "/a/./b/../c//d" -> "/a/c/d". Query strings are not part of the input.
std::string NormalizePath(std::string_view path);

}  // namespace dynaprox::http

#endif  // DYNAPROX_HTTP_MESSAGE_H_
