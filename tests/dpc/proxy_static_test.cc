// DpcProxy with the static cache enabled: untagged cacheable responses are
// served without touching the origin (the ISA Server behaviour in the
// paper's test configuration).

#include <gtest/gtest.h>

#include "common/clock.h"
#include "dpc/proxy.h"

namespace dynaprox::dpc {
namespace {

class ProxyStaticTest : public ::testing::Test {
 protected:
  ProxyStaticTest()
      : upstream_([this](const http::Request& request) {
          ++origin_requests_;
          std::string path(request.Path());
          if (path == "/static.css") {
            http::Response response = http::Response::MakeOk("css-bytes");
            response.headers.Set("Cache-Control", "public, max-age=60");
            return response;
          }
          if (path == "/tagged.js") {
            // Supports conditional GET: unchanged content revalidates.
            if (auto inm = request.headers.Get("If-None-Match");
                inm.has_value() && *inm == etag_) {
              ++revalidation_304s_;
              http::Response not_modified;
              not_modified.status_code = 304;
              not_modified.reason = "Not Modified";
              return not_modified;
            }
            http::Response response =
                http::Response::MakeOk("js-" + etag_);
            response.headers.Set("Cache-Control", "public, max-age=30");
            response.headers.Set("ETag", etag_);
            return response;
          }
          if (path == "/volatile.json") {
            http::Response response = http::Response::MakeOk("data");
            response.headers.Set("Cache-Control", "no-store");
            return response;
          }
          return http::Response::MakeOk("plain");
        }) {}

  DpcProxy MakeProxy() {
    ProxyOptions options;
    options.capacity = 8;
    options.enable_static_cache = true;
    options.static_cache.clock = &clock_;
    return DpcProxy(&upstream_, options);
  }

  http::Request Get(const std::string& target) {
    http::Request request;
    request.target = target;
    return request;
  }

  SimClock clock_;
  int origin_requests_ = 0;
  int revalidation_304s_ = 0;
  std::string etag_ = "\"v1\"";
  net::DirectTransport upstream_;
};

TEST_F(ProxyStaticTest, SecondRequestServedFromStaticCache) {
  DpcProxy proxy = MakeProxy();
  EXPECT_EQ(proxy.Handle(Get("/static.css")).body, "css-bytes");
  EXPECT_EQ(proxy.Handle(Get("/static.css")).body, "css-bytes");
  EXPECT_EQ(origin_requests_, 1);
  EXPECT_EQ(proxy.stats().static_hits, 1u);
}

TEST_F(ProxyStaticTest, ExpiredEntryRefetches) {
  DpcProxy proxy = MakeProxy();
  proxy.Handle(Get("/static.css"));
  clock_.AdvanceSeconds(120);
  proxy.Handle(Get("/static.css"));
  EXPECT_EQ(origin_requests_, 2);
}

TEST_F(ProxyStaticTest, NoStoreResponsesAlwaysGoUpstream) {
  DpcProxy proxy = MakeProxy();
  proxy.Handle(Get("/volatile.json"));
  proxy.Handle(Get("/volatile.json"));
  EXPECT_EQ(origin_requests_, 2);
  EXPECT_EQ(proxy.stats().static_hits, 0u);
}

TEST_F(ProxyStaticTest, UncacheableHeaderlessResponsesPassThrough) {
  DpcProxy proxy = MakeProxy();
  proxy.Handle(Get("/page"));
  proxy.Handle(Get("/page"));
  EXPECT_EQ(origin_requests_, 2);
}

TEST_F(ProxyStaticTest, PostRequestsBypassStaticCache) {
  DpcProxy proxy = MakeProxy();
  proxy.Handle(Get("/static.css"));  // Warm.
  http::Request post = Get("/static.css");
  post.method = "POST";
  proxy.Handle(post);
  EXPECT_EQ(origin_requests_, 2);
}

TEST_F(ProxyStaticTest, ClearCacheDropsStaticEntries) {
  DpcProxy proxy = MakeProxy();
  proxy.Handle(Get("/static.css"));
  proxy.ClearCache();
  proxy.Handle(Get("/static.css"));
  EXPECT_EQ(origin_requests_, 2);
}

TEST_F(ProxyStaticTest, StaleEntryRevalidatesWith304) {
  DpcProxy proxy = MakeProxy();
  EXPECT_EQ(proxy.Handle(Get("/tagged.js")).body, "js-\"v1\"");
  clock_.AdvanceSeconds(60);  // Past max-age=30: stale but revalidatable.
  http::Response response = proxy.Handle(Get("/tagged.js"));
  EXPECT_EQ(response.body, "js-\"v1\"");  // Body served from cache.
  EXPECT_EQ(revalidation_304s_, 1);
  EXPECT_EQ(proxy.stats().static_revalidations, 1u);
  // Freshness extended: the next request is a pure cache hit.
  proxy.Handle(Get("/tagged.js"));
  EXPECT_EQ(origin_requests_, 2);  // Initial 200 + one 304.
}

TEST_F(ProxyStaticTest, ChangedContentReplacesStaleEntry) {
  DpcProxy proxy = MakeProxy();
  proxy.Handle(Get("/tagged.js"));
  etag_ = "\"v2\"";  // Content changed at the origin.
  clock_.AdvanceSeconds(60);
  http::Response response = proxy.Handle(Get("/tagged.js"));
  EXPECT_EQ(response.body, "js-\"v2\"");
  EXPECT_EQ(revalidation_304s_, 0);  // ETag mismatch: full 200.
  // New version now cached.
  proxy.Handle(Get("/tagged.js"));
  EXPECT_EQ(origin_requests_, 2);
}

TEST_F(ProxyStaticTest, DisabledByDefault) {
  ProxyOptions options;
  options.capacity = 8;
  DpcProxy proxy(&upstream_, options);
  EXPECT_EQ(proxy.static_cache(), nullptr);
  proxy.Handle(Get("/static.css"));
  proxy.Handle(Get("/static.css"));
  EXPECT_EQ(origin_requests_, 2);
}

}  // namespace
}  // namespace dynaprox::dpc
