#include "dpc/fragment_store.h"

#include <gtest/gtest.h>

namespace dynaprox::dpc {
namespace {

TEST(FragmentStoreTest, SetGetRoundTrip) {
  FragmentStore store(4);
  ASSERT_TRUE(store.Set(2, "hello").ok());
  Result<dpc::FragmentRef> content = store.Get(2);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(**content, "hello");
}

TEST(FragmentStoreTest, GetEmptySlotIsNotFound) {
  FragmentStore store(4);
  Result<dpc::FragmentRef> content = store.Get(1);
  EXPECT_TRUE(content.status().IsNotFound());
  EXPECT_EQ(store.stats().get_misses, 1u);
}

TEST(FragmentStoreTest, OutOfRangeKeysRejected) {
  FragmentStore store(2);
  EXPECT_TRUE(store.Set(2, "x").IsInvalidArgument());
  EXPECT_TRUE(store.Get(2).status().IsInvalidArgument());
}

TEST(FragmentStoreTest, OverwriteReplacesContentAndAccounting) {
  FragmentStore store(2);
  ASSERT_TRUE(store.Set(0, "12345").ok());
  EXPECT_EQ(store.content_bytes(), 5u);
  EXPECT_EQ(store.occupied_slots(), 1u);
  ASSERT_TRUE(store.Set(0, "ab").ok());
  EXPECT_EQ(store.content_bytes(), 2u);
  EXPECT_EQ(store.occupied_slots(), 1u);
  EXPECT_EQ(**store.Get(0), "ab");
}

TEST(FragmentStoreTest, EmptyContentIsStillOccupied) {
  // An empty fragment (e.g. a conditional section that rendered nothing)
  // is a valid cached value, distinct from "never set".
  FragmentStore store(2);
  ASSERT_TRUE(store.Set(0, "").ok());
  Result<dpc::FragmentRef> content = store.Get(0);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ((*content)->size(), 0u);
  EXPECT_EQ(store.occupied_slots(), 1u);
}

TEST(FragmentStoreTest, ClearEmptiesEverything) {
  FragmentStore store(3);
  ASSERT_TRUE(store.Set(0, "a").ok());
  ASSERT_TRUE(store.Set(1, "b").ok());
  store.Clear();
  EXPECT_EQ(store.occupied_slots(), 0u);
  EXPECT_EQ(store.content_bytes(), 0u);
  EXPECT_TRUE(store.Get(0).status().IsNotFound());
}

TEST(FragmentStoreTest, StatsCountOperations) {
  FragmentStore store(2);
  ASSERT_TRUE(store.Set(0, "x").ok());
  (void)store.Get(0);
  (void)store.Get(0);
  (void)store.Get(1);
  EXPECT_EQ(store.stats().sets, 1u);
  EXPECT_EQ(store.stats().gets, 3u);
  EXPECT_EQ(store.stats().get_misses, 1u);
}

TEST(FragmentStoreTest, ZeroCapacityStore) {
  FragmentStore store(0);
  EXPECT_EQ(store.capacity(), 0u);
  EXPECT_TRUE(store.Set(0, "x").IsInvalidArgument());
}

TEST(FragmentStorePushTest, SetPushedStoresAndCounts) {
  FragmentStore store(4);
  auto body = std::make_shared<const std::string>("pushed body");
  ASSERT_TRUE(store.SetPushed(1, body, /*base_age_micros=*/0,
                              /*now_micros=*/100).ok());
  EXPECT_EQ(**store.Get(1), "pushed body");
  EXPECT_EQ(store.stats().pushes, 1u);
  EXPECT_EQ(store.stats().sets, 0u);
  EXPECT_EQ(store.pushed_slots(), 1u);
}

TEST(FragmentStorePushTest, AgeAccountsBaseAgePlusResidency) {
  FragmentStore store(4);
  auto body = std::make_shared<const std::string>("b");
  // Pushed at t=1000 already 500 old; at t=1600 it is 500 + 600 old.
  ASSERT_TRUE(store.SetPushed(0, body, 500, 1000).ok());
  Result<MicroTime> age = store.AgeOf(0, 1600);
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(*age, 1100);
}

TEST(FragmentStorePushTest, SetContentHasAgeZero) {
  FragmentStore store(4);
  ASSERT_TRUE(store.Set(2, "fresh").ok());
  Result<MicroTime> age = store.AgeOf(2, 999999);
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(*age, 0);
  EXPECT_EQ(store.pushed_slots(), 0u);
}

TEST(FragmentStorePushTest, AgeOfEmptySlotIsNotFound) {
  FragmentStore store(4);
  EXPECT_TRUE(store.AgeOf(3, 0).status().IsNotFound());
}

TEST(FragmentStorePushTest, SetOverwritesPushResettingAge) {
  FragmentStore store(4);
  auto body = std::make_shared<const std::string>("old push");
  ASSERT_TRUE(store.SetPushed(1, body, 1000, 2000).ok());
  EXPECT_EQ(store.pushed_slots(), 1u);
  // A SET from a freshly assembled response supersedes the push: the
  // content is now zero-age and the pushed gauge drops.
  ASSERT_TRUE(store.Set(1, "fresh set").ok());
  EXPECT_EQ(store.pushed_slots(), 0u);
  EXPECT_EQ(*store.AgeOf(1, 5000), 0);
  EXPECT_EQ(**store.Get(1), "fresh set");
}

TEST(FragmentStorePushTest, ClearResetsPushState) {
  FragmentStore store(4);
  auto body = std::make_shared<const std::string>("x");
  ASSERT_TRUE(store.SetPushed(0, body, 0, 0).ok());
  store.Clear();
  EXPECT_EQ(store.pushed_slots(), 0u);
  EXPECT_TRUE(store.AgeOf(0, 0).status().IsNotFound());
}

}  // namespace
}  // namespace dynaprox::dpc
