#ifndef DYNAPROX_BENCH_BENCH_UTIL_H_
#define DYNAPROX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "analytical/model.h"

namespace dynaprox::benchutil {

// Prints the standard experiment banner: which figure, and the parameter
// set in Table 2 form.
inline void PrintHeader(const char* figure, const char* title,
                        const analytical::ModelParams& params) {
  std::printf("=== %s: %s ===\n", figure, title);
  std::printf(
      "params: h=%.2f s_e=%.0fB frags/page=%d pages=%d f=%.0fB g=%.0fB "
      "cacheability=%.2f zipf_alpha=%.1f\n",
      params.hit_ratio, params.fragment_size, params.fragments_per_page,
      params.num_pages, params.header_size, params.tag_size,
      params.cacheability, params.zipf_alpha);
}

inline void PrintFooter() { std::printf("\n"); }

}  // namespace dynaprox::benchutil

#endif  // DYNAPROX_BENCH_BENCH_UTIL_H_
