#include "common/json.h"

#include <gtest/gtest.h>

namespace dynaprox {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak\t"), "line\\nbreak\\t");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, FlatObject) {
  JsonWriter json;
  json.BeginObject();
  json.Key("a").Int(1);
  json.Key("b").String("two");
  json.Key("c").Bool(true);
  json.Key("d").Null();
  json.EndObject();
  EXPECT_EQ(json.TakeString(),
            R"({"a":1,"b":"two","c":true,"d":null})");
}

TEST(JsonWriterTest, NestedObjectsAndArrays) {
  JsonWriter json;
  json.BeginObject();
  json.Key("list").BeginArray();
  json.Int(1);
  json.Int(2);
  json.BeginObject();
  json.Key("x").Double(0.5);
  json.EndObject();
  json.EndArray();
  json.Key("empty").BeginObject();
  json.EndObject();
  json.EndObject();
  EXPECT_EQ(json.TakeString(), R"({"list":[1,2,{"x":0.5}],"empty":{}})");
}

TEST(JsonWriterTest, EmptyArray) {
  JsonWriter json;
  json.BeginArray();
  json.EndArray();
  EXPECT_EQ(json.TakeString(), "[]");
}

TEST(JsonWriterTest, TopLevelScalar) {
  JsonWriter json;
  json.String("alone");
  EXPECT_EQ(json.TakeString(), "\"alone\"");
}

TEST(JsonWriterTest, UintAndNegativeInt) {
  JsonWriter json;
  json.BeginArray();
  json.Uint(UINT64_MAX);
  json.Int(-42);
  json.EndArray();
  EXPECT_EQ(json.TakeString(), "[18446744073709551615,-42]");
}

TEST(JsonWriterTest, NonFiniteDoubleBecomesNull) {
  JsonWriter json;
  json.BeginArray();
  json.Double(std::numeric_limits<double>::infinity());
  json.Double(std::numeric_limits<double>::quiet_NaN());
  json.EndArray();
  EXPECT_EQ(json.TakeString(), "[null,null]");
}

TEST(JsonWriterTest, KeysEscaped) {
  JsonWriter json;
  json.BeginObject();
  json.Key("we\"ird").Int(1);
  json.EndObject();
  EXPECT_EQ(json.TakeString(), R"({"we\"ird":1})");
}

TEST(JsonWriterTest, TakeStringResets) {
  JsonWriter json;
  json.BeginObject();
  json.EndObject();
  EXPECT_EQ(json.TakeString(), "{}");
  json.BeginArray();
  json.Int(1);
  json.EndArray();
  EXPECT_EQ(json.TakeString(), "[1]");
}

}  // namespace
}  // namespace dynaprox
