#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dynaprox::net {
namespace {

http::Response EchoHandler(const http::Request& request) {
  return http::Response::MakeOk("path=" + std::string(request.Path()) +
                                ";body=" + request.body);
}

TEST(TcpTest, RoundTripOverLoopback) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  TcpClientTransport client("127.0.0.1", server.port());
  http::Request request;
  request.method = "POST";
  request.target = "/hello";
  request.body = "payload";
  Result<http::Response> response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->body, "path=/hello;body=payload");
  server.Stop();
}

TEST(TcpTest, KeepAliveServesManyRequestsOnOneConnection) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport client("127.0.0.1", server.port());
  for (int i = 0; i < 20; ++i) {
    http::Request request;
    request.target = "/r" + std::to_string(i);
    Result<http::Response> response = client.RoundTrip(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->body, "path=/r" + std::to_string(i) + ";body=");
  }
  server.Stop();
}

TEST(TcpTest, MultipleConcurrentClients) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport a("127.0.0.1", server.port());
  TcpClientTransport b("127.0.0.1", server.port());
  http::Request request;
  request.target = "/both";
  EXPECT_TRUE(a.RoundTrip(request).ok());
  EXPECT_TRUE(b.RoundTrip(request).ok());
  EXPECT_TRUE(a.RoundTrip(request).ok());
  server.Stop();
}

TEST(TcpTest, LargeBodyTransfers) {
  TcpServer server([](const http::Request& request) {
    return http::Response::MakeOk(std::string(256 * 1024, 'z') +
                                  request.body);
  });
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport client("127.0.0.1", server.port());
  http::Request request;
  request.body = std::string(64 * 1024, 'q');
  Result<http::Response> response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body.size(), 256u * 1024 + 64 * 1024);
  server.Stop();
}

TEST(TcpTest, ConnectToClosedPortFails) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();
  server.Stop();
  TcpClientTransport client("127.0.0.1", port);
  http::Request request;
  EXPECT_FALSE(client.RoundTrip(request).ok());
}

TEST(TcpTest, ReceiveTimeoutFailsFast) {
  // A listener that accepts but never responds.
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);

  TcpClientOptions options;
  options.io_timeout_micros = 100 * kMicrosPerMilli;  // 100ms.
  TcpClientTransport client("127.0.0.1", ntohs(addr.sin_port), options);
  http::Request request;
  Result<http::Response> response = client.RoundTrip(request);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
  ::close(listen_fd);
}

TEST(TcpTest, ConnectionThreadHandlesAreReapedEagerly) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  // Each iteration opens a connection, serves one request, and closes it.
  // Finished connection threads park their handles; the accept loop joins
  // them, so the handle count must stay bounded — not grow toward 50 and
  // only drain in Stop().
  for (int i = 0; i < 50; ++i) {
    TcpClientTransport client("127.0.0.1", server.port());
    http::Request request;
    request.target = "/r";
    ASSERT_TRUE(client.RoundTrip(request).ok());
  }
  // The last few threads may not have parked yet, and parked handles are
  // only joined on the next accept: poke the accept loop until it drains.
  size_t handles = server.connection_thread_handles();
  for (int i = 0; i < 100 && handles > 4; ++i) {
    {
      TcpClientTransport client("127.0.0.1", server.port());
      http::Request request;
      ASSERT_TRUE(client.RoundTrip(request).ok());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    handles = server.connection_thread_handles();
  }
  EXPECT_LE(handles, 4u);
  server.Stop();
}

// Fills the fd table (after clamping RLIMIT_NOFILE so this stays fast),
// returning the dummy fds that hold it full.
std::vector<int> FillFdTable() {
  std::vector<int> dummies;
  for (;;) {
    int fd = ::open("/dev/null", O_RDONLY);
    if (fd < 0) break;
    dummies.push_back(fd);
  }
  return dummies;
}

TEST(TcpTest, FdExhaustionIsCountedPerEpisode) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  rlimit original{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &original), 0);
  rlimit tight = original;
  tight.rlim_cur = 128;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);

  for (uint64_t episode = 1; episode <= 2; ++episode) {
    // Let the previous episode's server-side connections close before
    // filling the table — an fd they free afterwards would give the
    // accept a spare slot and mask the outage.
    for (int i = 0; i < 200 && server.ingress().open_connections.load() > 0;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<int> dummies = FillFdTable();
    ASSERT_FALSE(dummies.empty());
    // Free exactly one fd: the client's socket takes it, so the server's
    // accept wakes with nothing left and fails with EMFILE.
    ::close(dummies.back());
    dummies.pop_back();
    {
      TcpClientOptions options;
      options.io_timeout_micros = 300 * kMicrosPerMilli;
      TcpClientTransport starved("127.0.0.1", server.port(), options);
      http::Request request;
      // The round trip itself may fail or (if the kernel frees an fd in
      // time for the accept retry) succeed; only the episode bookkeeping
      // below is deterministic.
      (void)starved.RoundTrip(request);
    }
    uint64_t episodes =
        server.ingress().accept_fd_exhaustion_episodes.load();
    for (int i = 0; i < 200 && episodes < episode; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      episodes = server.ingress().accept_fd_exhaustion_episodes.load();
    }
    // Logged and counted exactly once per sustained outage, not once per
    // 10ms accept round.
    EXPECT_EQ(episodes, episode);
    for (int fd : dummies) ::close(fd);
    // A successful accept re-arms the episode reporting — without it the
    // next outage would go uncounted.
    TcpClientTransport recovered("127.0.0.1", server.port());
    http::Request request;
    ASSERT_TRUE(recovered.RoundTrip(request).ok());
  }

  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &original), 0);
  EXPECT_EQ(server.ingress().accept_fd_exhaustion_episodes.load(), 2u);
  server.Stop();
}

TEST(TcpTest, StopIsIdempotent) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();
}

}  // namespace
}  // namespace dynaprox::net
