#ifndef DYNAPROX_APPSERVER_PERSONALIZATION_H_
#define DYNAPROX_APPSERVER_PERSONALIZATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace dynaprox::appserver {

// Table and column names the personalization layer expects in the content
// repository. Site builders (examples, sim) populate these.
inline constexpr char kUsersTable[] = "users";
inline constexpr char kProductsTable[] = "products";

// A registered user's profile (paper 2.1: profile controls both content
// preferences and page layout). Stands in for the CMS personalization
// object shared across fragments in Section 3.2.2's interdependence
// example.
struct UserProfile {
  std::string user_id;
  std::string display_name;
  std::string preferred_category;
  // Section names in the user's chosen order — the *dynamic layout*.
  std::vector<std::string> layout;
};

// Loads the profile of `user_id` from the repository's "users" table
// (columns: name, category, layout as comma-separated section names).
Result<UserProfile> LoadProfile(storage::ContentRepository& repository,
                                const std::string& user_id);

// Default layout served to non-registered visitors.
std::vector<std::string> DefaultLayout();

// A product surfaced by the recommender.
struct ProductPick {
  std::string product_id;
  std::string title;
  double price;
};

// Recommends up to `limit` products from the profile's preferred category
// ("products" table columns: title, category, price). Deterministic: key
// order.
Result<std::vector<ProductPick>> RecommendProducts(
    storage::ContentRepository& repository, const UserProfile& profile,
    size_t limit);

}  // namespace dynaprox::appserver

#endif  // DYNAPROX_APPSERVER_PERSONALIZATION_H_
