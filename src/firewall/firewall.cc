#include "firewall/firewall.h"

namespace dynaprox::firewall {

ScanningFirewall::ScanningFirewall(net::Transport* inner,
                                   std::vector<std::string> signatures)
    : inner_(inner) {
  matchers_.reserve(signatures.size());
  for (std::string& signature : signatures) {
    matchers_.emplace_back(std::move(signature));
  }
}

bool ScanningFirewall::Scan(std::string_view data) {
  ++stats_.messages;
  stats_.bytes_scanned += data.size();
  bool matched = false;
  for (const dpc::KmpMatcher& matcher : matchers_) {
    size_t count = matcher.CountOccurrences(data);
    stats_.signature_hits += count;
    matched = matched || count > 0;
  }
  return matched;
}

Result<http::Response> ScanningFirewall::RoundTrip(
    const http::Request& request) {
  if (Scan(request.Serialize())) {
    ++stats_.blocked;
    return http::Response::MakeError(403, "Forbidden",
                                     "request blocked by firewall policy");
  }
  Result<http::Response> response = inner_->RoundTrip(request);
  if (response.ok()) {
    // Signatures may straddle slice boundaries, so a chained body must be
    // scanned contiguously; flattening is a no-op for string bodies.
    response->FlattenBody();
    Scan(response->body);
  }
  return response;
}

}  // namespace dynaprox::firewall
