#ifndef DYNAPROX_HTTP_PARSER_H_
#define DYNAPROX_HTTP_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/buffer_chain.h"
#include "common/result.h"
#include "http/message.h"

namespace dynaprox::http {

// Parses a complete request/response from `wire`. Fails with
// InvalidArgument on malformed input or if bytes remain unconsumed.
// "Transfer-Encoding: chunked" bodies are decoded: the parsed message
// carries the joined payload with Content-Length set and the
// Transfer-Encoding header removed.
Result<Request> ParseRequest(std::string_view wire);
Result<Response> ParseResponse(std::string_view wire);

// Serializes `response` with chunked transfer encoding, splitting the body
// into chunks of at most `chunk_size` bytes. (Requests stay
// Content-Length-framed; chunking is a response-streaming feature.)
std::string SerializeChunked(const Response& response, size_t chunk_size);

// Head of a streamed response: status line + headers with Content-Length
// and Transfer-Encoding dropped + "Transfer-Encoding: chunked" + blank
// line. The body then follows as chunk frames (AppendChunkFrame), one per
// BodyStream pull, closed by AppendFinalChunkFrame.
std::string SerializeStreamingHead(const Response& response);

// Appends one chunk frame carrying `payload` to `out`. Zero-copy: the
// payload's slices are spliced through; only the size line is newly
// allocated. An empty payload appends nothing (an empty chunk would
// terminate the stream early).
void AppendChunkFrame(common::BufferChain& out, common::BufferChain payload);

// Appends the terminating "0\r\n\r\n" frame.
void AppendFinalChunkFrame(common::BufferChain& out);

// Incremental decoder for a single response whose body is consumed as it
// arrives — the client half of a streaming round trip. Feed() raw bytes;
// NextHead() yields the parsed head (empty body) once the header section
// is complete; from then on TakeBody() drains payload decoded so far —
// Content-Length counted down, or chunked framing removed; no declared
// length means no body, matching the buffered parser. One response per
// reader; errors are sticky.
class StreamingResponseReader {
 public:
  // Appends raw bytes received from the transport.
  void Feed(std::string_view bytes);

  // The parsed head once complete (its body members are empty — the body
  // arrives via TakeBody). nullopt = need more bytes. Call until it
  // yields a value; calling again after that is an error.
  std::optional<Result<Response>> NextHead();

  // Decoded payload accumulated since the last call; empty when none.
  std::string TakeBody();

  // True once the whole body has been decoded (TakeBody may still hold
  // the tail).
  bool body_complete() const { return state_ == State::kDone; }

  bool failed() const { return state_ == State::kFailed; }

  // The sticky failure; Ok while the reader is healthy.
  Status status() const { return status_; }

  // Raw bytes received beyond the end of this response's body (framing
  // garbage or an unsolicited next message): non-zero means the
  // connection's state is unknown and it must not be reused.
  size_t excess_bytes() const {
    return state_ == State::kDone ? buffer_.size() : 0;
  }

  // Raw bytes buffered and not yet decoded.
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  enum class State {
    kHead,          // Header section still streaming in.
    kFixedBody,     // Content-Length countdown (`remaining_`).
    kChunkSize,     // Awaiting a chunk-size line.
    kChunkData,     // Inside a chunk (`remaining_`).
    kChunkDataCrlf, // Awaiting the CRLF after chunk data.
    kTrailer,       // Trailer section of the terminating chunk.
    kDone,
    kFailed,
  };

  Status Fail(Status status);
  // Advances body decoding as far as the buffered bytes allow.
  void Pump();

  State state_ = State::kHead;
  Status status_ = Status::Ok();
  std::string buffer_;   // Raw undecoded bytes.
  std::string decoded_;  // Payload awaiting TakeBody().
  size_t remaining_ = 0; // Bytes left in the fixed body / current chunk.
};

// Incremental reader for a byte stream carrying back-to-back HTTP messages
// (framing via Content-Length; chunked encoding is not used by dynaprox).
//
//   RequestReader reader;
//   reader.Feed(bytes);
//   while (auto req = reader.Next()) Handle(**req);  // Result<...> inside
//
// Next() returns std::nullopt when more bytes are needed; a Result carrying
// an error Status when the stream is corrupt (the reader then stays in the
// error state); and a parsed message otherwise.
//
// Optional byte caps (set_limits) bound the reader's memory against
// hostile peers: a header section that exceeds the header cap — whether
// terminated or still streaming — and a declared Content-Length (or
// accumulating chunked body) over the body cap both fail the stream with
// CapacityExceeded *before* the body is buffered. limit_violation() says
// which cap tripped so servers can answer 431 vs 413.
template <typename Message>
class MessageReader {
 public:
  struct Limits {
    size_t max_header_bytes = 0;  // 0 = unlimited.
    size_t max_body_bytes = 0;    // 0 = unlimited.
  };

  enum class LimitViolation { kNone, kHeaderBytes, kBodyBytes };

  // Appends raw bytes received from the transport.
  void Feed(std::string_view bytes);

  // Attempts to extract the next complete message. See class comment.
  std::optional<Result<Message>> Next();

  // Byte caps checked by Next(); set before feeding.
  void set_limits(Limits limits) { limits_ = limits; }

  // Bytes currently buffered and not yet consumed by Next().
  size_t buffered_bytes() const { return buffer_.size(); }

  bool failed() const { return failed_; }

  // Which cap (if any) put the reader into the failed state.
  LimitViolation limit_violation() const { return violation_; }

 private:
  Result<Message> FailLimit(LimitViolation violation, std::string message);

  std::string buffer_;
  Limits limits_;
  bool failed_ = false;
  LimitViolation violation_ = LimitViolation::kNone;
};

using RequestReader = MessageReader<Request>;
using ResponseReader = MessageReader<Response>;

}  // namespace dynaprox::http

#endif  // DYNAPROX_HTTP_PARSER_H_
