#include "dpc/assembler.h"

namespace dynaprox::dpc {

Result<AssembledPage> AssemblePage(common::Buffer wire,
                                   FragmentStore& store,
                                   ScanStrategy strategy, const Clock* clock,
                                   AssemblyTiming* timing) {
  bool timed = clock != nullptr && timing != nullptr;
  MicroTime start = timed ? clock->NowMicros() : 0;
  std::string_view wire_view = wire == nullptr ? std::string_view() : *wire;
  std::vector<TemplateSegment> segments;
  DYNAPROX_ASSIGN_OR_RETURN(segments, ParseTemplate(wire_view, strategy));
  MicroTime scanned = timed ? clock->NowMicros() : 0;
  if (timed) timing->scan_micros = scanned - start;

  AssembledPage out;
  for (TemplateSegment& segment : segments) {
    switch (segment.kind) {
      case TemplateSegment::Kind::kLiteral:
        for (std::string_view piece : segment.pieces) {
          out.body.Append(wire, piece);
          out.bytes_referenced += piece.size();
        }
        break;
      case TemplateSegment::Kind::kSet: {
        ++out.set_count;
        out.set_keys.push_back(segment.key);
        // One materialization, shared: the store slot and the page chain
        // hold the same buffer, so the payload is never copied again —
        // not here, and not by any later page that GETs it.
        FragmentRef fragment =
            std::make_shared<const std::string>(segment.Text());
        out.bytes_copied += fragment->size();
        out.body.Append(fragment);
        DYNAPROX_RETURN_IF_ERROR(store.Set(segment.key, std::move(fragment)));
        break;
      }
      case TemplateSegment::Kind::kGet: {
        ++out.get_count;
        Result<FragmentRef> content = store.Get(segment.key);
        if (!content.ok()) {
          if (content.status().IsNotFound()) {
            out.missing_keys.push_back(segment.key);
            break;
          }
          return content.status();
        }
        out.bytes_referenced += (*content)->size();
        out.body.Append(std::move(*content));
        break;
      }
    }
  }
  if (timed) timing->splice_micros = clock->NowMicros() - scanned;
  return out;
}

Result<AssembledPage> AssemblePage(std::string_view wire,
                                   FragmentStore& store,
                                   ScanStrategy strategy, const Clock* clock,
                                   AssemblyTiming* timing) {
  return AssemblePage(common::MakeBuffer(std::string(wire)), store, strategy,
                      clock, timing);
}

Status StreamingAssembler::Execute(std::vector<StreamSegment>& segments,
                                   common::BufferChain& out) {
  for (StreamSegment& segment : segments) {
    switch (segment.kind) {
      case TemplateSegment::Kind::kLiteral:
        for (StreamPiece& piece : segment.pieces) {
          progress_.bytes_referenced += piece.view.size();
          out.Append(std::move(piece.owner), piece.view);
        }
        break;
      case TemplateSegment::Kind::kSet: {
        ++progress_.set_count;
        // Same sharing as the buffered path: one materialization feeds
        // both the store slot and the output chain.
        FragmentRef fragment =
            std::make_shared<const std::string>(segment.Text());
        progress_.bytes_copied += fragment->size();
        out.Append(fragment);
        DYNAPROX_RETURN_IF_ERROR(store_.Set(segment.key, std::move(fragment)));
        break;
      }
      case TemplateSegment::Kind::kGet: {
        ++progress_.get_count;
        Result<FragmentRef> content = store_.Get(segment.key);
        if (!content.ok() && content.status().IsNotFound() &&
            miss_resolver_ != nullptr) {
          content = miss_resolver_(segment.key);
        }
        if (!content.ok()) return content.status();
        progress_.bytes_referenced += (*content)->size();
        out.Append(std::move(*content));
        break;
      }
    }
  }
  return Status::Ok();
}

Status StreamingAssembler::Feed(common::Buffer owner, std::string_view bytes,
                                common::BufferChain& out) {
  segments_.clear();
  DYNAPROX_RETURN_IF_ERROR(scanner_.Feed(std::move(owner), bytes, segments_));
  return Execute(segments_, out);
}

Status StreamingAssembler::Feed(common::Buffer chunk,
                                common::BufferChain& out) {
  std::string_view bytes = chunk == nullptr ? std::string_view() : *chunk;
  return Feed(std::move(chunk), bytes, out);
}

Status StreamingAssembler::Finish(common::BufferChain& out) {
  segments_.clear();
  DYNAPROX_RETURN_IF_ERROR(scanner_.Finish(segments_));
  return Execute(segments_, out);
}

}  // namespace dynaprox::dpc
