// Ablation: tag size g. The paper fixes g=10 (Table 2); this sweep shows
// how framing overhead moves the break-even fragment size — the reason
// Figure 2(a)'s ratio exceeds 1 for tiny fragments.

#include <cstdio>

#include "analytical/model.h"
#include "bench_util.h"

namespace {

// Smallest fragment size at which the DPC saves bytes (ratio < 1), found
// by bisection on the closed-form model.
double BreakEvenFragmentSize(dynaprox::analytical::ModelParams params) {
  double lo = 0.0;
  double hi = 10000.0;
  for (int iter = 0; iter < 60; ++iter) {
    params.fragment_size = (lo + hi) / 2;
    if (dynaprox::analytical::BytesRatio(params) > 1.0) {
      lo = params.fragment_size;
    } else {
      hi = params.fragment_size;
    }
  }
  return (lo + hi) / 2;
}

}  // namespace

int main() {
  using dynaprox::analytical::ModelParams;
  ModelParams params = ModelParams::Table2Baseline();
  dynaprox::benchutil::PrintHeader("Ablation",
                                   "Tag size g vs savings and break-even",
                                   params);

  std::printf("%8s %14s %14s %18s\n", "g(B)", "ratio@1KB",
              "savings@1KB(%)", "break-even s_e(B)");
  for (double g : {2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0}) {
    ModelParams point = params;
    point.tag_size = g;
    point.fragment_size = 1000.0;
    std::printf("%8.0f %14.4f %14.3f %18.1f\n", g,
                dynaprox::analytical::BytesRatio(point),
                dynaprox::analytical::SavingsPercent(point),
                BreakEvenFragmentSize(point));
  }
  std::printf(
      "expectation: break-even fragment size grows ~linearly with g; the "
      "realized codec tag (<=10B) keeps sub-100B fragments worthwhile\n");
  dynaprox::benchutil::PrintFooter();
  return 0;
}
