// End-to-end streaming over real sockets: handlers that return a
// Response::body_stream (served chunked by TcpServer and EpollServer) and
// the client half (Transport::RoundTripStreaming on the buffered adapter,
// TcpClientTransport, and PooledClientTransport).

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/buffer_chain.h"
#include "net/connection_pool.h"
#include "net/epoll_server.h"
#include "net/tcp.h"
#include "net/transport.h"

namespace dynaprox::net {
namespace {

// A body stream delivering a fixed script of chunks, then end (or an
// error when `fail_after_script` is set).
class ScriptedStream : public http::BodyStream {
 public:
  explicit ScriptedStream(std::vector<std::string> chunks,
                          bool fail_after_script = false)
      : chunks_(std::move(chunks)), fail_after_script_(fail_after_script) {}

  Result<common::BufferChain> Next() override {
    if (at_ < chunks_.size()) {
      common::BufferChain out;
      out.AppendCopy(chunks_[at_++]);
      return out;
    }
    if (fail_after_script_) return Status::IoError("scripted mid-body error");
    return common::BufferChain();
  }

 private:
  std::vector<std::string> chunks_;
  bool fail_after_script_;
  size_t at_ = 0;
};

http::Response StreamedResponse(std::vector<std::string> chunks,
                                bool fail_after_script = false) {
  http::Response response;
  response.headers.Set("X-Streamed", "1");
  response.body_stream = std::make_shared<ScriptedStream>(
      std::move(chunks), fail_after_script);
  return response;
}

std::string DrainAll(http::BodyStream& stream, Status* status = nullptr) {
  std::string out;
  for (;;) {
    Result<common::BufferChain> chunk = stream.Next();
    if (!chunk.ok()) {
      if (status != nullptr) *status = chunk.status();
      return out;
    }
    if (chunk->empty()) {
      if (status != nullptr) *status = Status::Ok();
      return out;
    }
    out += chunk->Flatten();
  }
}

// --- Servers sending streams, read by the buffered client ---------------

TEST(StreamingTest, TcpServerStreamsChunkedToBufferedClient) {
  TcpServer server([](const http::Request&) {
    return StreamedResponse({"one ", "two ", "three"});
  });
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport client("127.0.0.1", server.port());
  http::Request request;
  request.target = "/streamed";
  Result<http::Response> response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "one two three");
  EXPECT_EQ(response->headers.Get("X-Streamed"), "1");
  server.Stop();
}

TEST(StreamingTest, EpollServerStreamsChunkedToBufferedClient) {
  EpollServer server([](const http::Request&) {
    return StreamedResponse({"alpha", "beta", "gamma"});
  });
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport client("127.0.0.1", server.port());
  http::Request request;
  request.target = "/streamed";
  Result<http::Response> response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "alphabetagamma");
  server.Stop();
}

TEST(StreamingTest, KeepAliveSurvivesAStreamedResponse) {
  // The chunked terminator delimits the body, so the connection must be
  // reusable for buffered and streamed requests alike — on both servers.
  std::atomic<int> calls{0};
  Handler handler = [&calls](const http::Request& request) {
    ++calls;
    if (request.Path() == "/streamed") {
      return StreamedResponse({"chunked", "-body"});
    }
    return http::Response::MakeOk("buffered-body");
  };
  TcpServer tcp_server(handler);
  EpollServer epoll_server(handler);
  ASSERT_TRUE(tcp_server.Start().ok());
  ASSERT_TRUE(epoll_server.Start().ok());
  for (uint16_t port : {tcp_server.port(), epoll_server.port()}) {
    TcpClientTransport client("127.0.0.1", port);
    for (int round = 0; round < 3; ++round) {
      http::Request request;
      request.target = "/streamed";
      Result<http::Response> streamed = client.RoundTrip(request);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
      EXPECT_EQ(streamed->body, "chunked-body");
      request.target = "/buffered";
      Result<http::Response> buffered = client.RoundTrip(request);
      ASSERT_TRUE(buffered.ok());
      EXPECT_EQ(buffered->body, "buffered-body");
    }
  }
  EXPECT_EQ(calls.load(), 12);
  tcp_server.Stop();
  epoll_server.Stop();
}

TEST(StreamingTest, MidStreamErrorSurfacesAsTruncatedBody) {
  // After the head is committed the only honest failure mode is closing
  // without the final chunk frame; the buffered client must report an
  // error, never a complete-looking short body.
  for (int use_epoll = 0; use_epoll < 2; ++use_epoll) {
    Handler handler = [](const http::Request&) {
      return StreamedResponse({"partial "}, /*fail_after_script=*/true);
    };
    std::unique_ptr<TcpServer> tcp;
    std::unique_ptr<EpollServer> epoll;
    uint16_t port = 0;
    if (use_epoll == 1) {
      epoll = std::make_unique<EpollServer>(handler);
      ASSERT_TRUE(epoll->Start().ok());
      port = epoll->port();
    } else {
      tcp = std::make_unique<TcpServer>(handler);
      ASSERT_TRUE(tcp->Start().ok());
      port = tcp->port();
    }
    TcpClientTransport client("127.0.0.1", port);
    http::Request request;
    request.target = "/aborted";
    Result<http::Response> response = client.RoundTrip(request);
    EXPECT_FALSE(response.ok()) << "use_epoll=" << use_epoll;
    if (tcp != nullptr) tcp->Stop();
    if (epoll != nullptr) epoll->Stop();
  }
}

TEST(StreamingTest, LargeStreamedBodyAppliesBackpressure) {
  // 4MiB through the EpollServer's 256KiB high-water mark: the pump must
  // pause and resume on EPOLLOUT without losing or reordering bytes.
  constexpr int kChunks = 64;
  const std::string chunk(64 * 1024, 's');
  EpollServer server([&chunk](const http::Request&) {
    std::vector<std::string> chunks(kChunks, chunk);
    return StreamedResponse(std::move(chunks));
  });
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport client("127.0.0.1", server.port());
  http::Request request;
  request.target = "/big";
  Result<http::Response> response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body.size(), size_t{kChunks} * chunk.size());
  EXPECT_EQ(response->body, std::string(kChunks * chunk.size(), 's'));
  server.Stop();
}

// --- Streaming clients --------------------------------------------------

TEST(StreamingTest, DefaultAdapterDeliversBufferedBodyAsOneStream) {
  DirectTransport direct(
      [](const http::Request&) { return http::Response::MakeOk("whole"); });
  http::Request request;
  Result<StreamingResponse> streaming = direct.RoundTripStreaming(request);
  ASSERT_TRUE(streaming.ok());
  EXPECT_EQ(streaming->head.status_code, 200);
  EXPECT_TRUE(streaming->head.body.empty());
  ASSERT_NE(streaming->body, nullptr);
  EXPECT_EQ(DrainAll(*streaming->body), "whole");
}

TEST(StreamingTest, TcpClientRoundTripStreamingDeliversBodyIncrementally) {
  TcpServer server([](const http::Request&) {
    return StreamedResponse({"first|", "second|", "third"});
  });
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport client("127.0.0.1", server.port());
  http::Request request;
  request.target = "/streamed";
  Result<StreamingResponse> streaming = client.RoundTripStreaming(request);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
  EXPECT_EQ(streaming->head.headers.Get("X-Streamed"), "1");
  Status drained;
  EXPECT_EQ(DrainAll(*streaming->body, &drained), "first|second|third");
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  streaming->body.reset();
  // Fully drained: the connection is reusable for an ordinary round trip.
  Result<http::Response> next = client.RoundTrip(request);
  EXPECT_TRUE(next.ok()) << next.status().ToString();
  server.Stop();
}

TEST(StreamingTest, TcpClientStreamingSeesMidBodyTruncation) {
  TcpServer server([](const http::Request&) {
    return StreamedResponse({"bytes-then-abort"},
                            /*fail_after_script=*/true);
  });
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport client("127.0.0.1", server.port());
  http::Request request;
  Result<StreamingResponse> streaming = client.RoundTripStreaming(request);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
  Status drained;
  std::string body = DrainAll(*streaming->body, &drained);
  EXPECT_FALSE(drained.ok());
  server.Stop();
}

TEST(StreamingTest, PooledStreamingLeavesOtherSlotsUsable) {
  // While one pooled connection is pinned by an undrained stream, a
  // nested RoundTrip on the same transport must proceed on another slot —
  // the property DpcProxy's inline miss recovery depends on.
  TcpServer server([](const http::Request& request) {
    if (request.Path() == "/streamed") {
      return StreamedResponse({"streamed-head|", "streamed-tail"});
    }
    return http::Response::MakeOk("nested-ok");
  });
  ASSERT_TRUE(server.Start().ok());
  PooledTransportOptions options;
  options.pool.max_connections = 2;
  PooledClientTransport client("127.0.0.1", server.port(), options);

  http::Request request;
  request.target = "/streamed";
  Result<StreamingResponse> streaming = client.RoundTripStreaming(request);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
  Result<common::BufferChain> first = streaming->body->Next();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->empty());

  // Stream open and partially consumed; issue a nested round trip.
  http::Request nested;
  nested.target = "/nested";
  Result<http::Response> inner = client.RoundTrip(nested);
  ASSERT_TRUE(inner.ok()) << inner.status().ToString();
  EXPECT_EQ(inner->body, "nested-ok");

  Status drained;
  std::string rest = DrainAll(*streaming->body, &drained);
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  EXPECT_EQ(first->Flatten() + rest, "streamed-head|streamed-tail");
  server.Stop();
}

TEST(StreamingTest, MeteredTransportMetersStreamedChunks) {
  auto inner = std::make_unique<DirectTransport>([](const http::Request&) {
    return http::Response::MakeOk(std::string(1000, 'm'));
  });
  ByteMeter requests;
  ByteMeter responses;
  MeteredTransport metered(std::move(inner), &requests, &responses);
  http::Request request;
  Result<StreamingResponse> streaming = metered.RoundTripStreaming(request);
  ASSERT_TRUE(streaming.ok());
  uint64_t after_head = responses.payload_bytes();
  EXPECT_EQ(DrainAll(*streaming->body).size(), 1000u);
  // Head metered as one message, body bytes accrued per pulled chunk.
  EXPECT_EQ(responses.payload_bytes(), after_head + 1000u);
  EXPECT_EQ(responses.messages(), 1u);
  EXPECT_EQ(requests.messages(), 1u);
}

}  // namespace
}  // namespace dynaprox::net
