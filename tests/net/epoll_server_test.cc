#include "net/epoll_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "http/parser.h"
#include "net/tcp.h"

namespace dynaprox::net {
namespace {

http::Response EchoHandler(const http::Request& request) {
  return http::Response::MakeOk("path=" + std::string(request.Path()) +
                                ";body=" + request.body);
}

TEST(EpollServerTest, RoundTrip) {
  EpollServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);
  TcpClientTransport client("127.0.0.1", server.port());
  http::Request request;
  request.method = "POST";
  request.target = "/hello";
  request.body = "payload";
  Result<http::Response> response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "path=/hello;body=payload");
  server.Stop();
}

TEST(EpollServerTest, KeepAliveSequence) {
  EpollServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport client("127.0.0.1", server.port());
  for (int i = 0; i < 50; ++i) {
    http::Request request;
    request.target = "/r" + std::to_string(i);
    Result<http::Response> response = client.RoundTrip(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->body, "path=/r" + std::to_string(i) + ";body=");
  }
  EXPECT_EQ(server.connections_accepted(), 1u);
  server.Stop();
}

TEST(EpollServerTest, LargeResponseWithPartialWrites) {
  // 4MB response exercises the EPOLLOUT partial-flush path.
  std::string big(4 * 1024 * 1024, 'Z');
  EpollServer server([&](const http::Request&) {
    return http::Response::MakeOk(big);
  });
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport client("127.0.0.1", server.port());
  Result<http::Response> response = client.RoundTrip(http::Request{});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body.size(), big.size());
  server.Stop();
}

TEST(EpollServerTest, ManyConcurrentClients) {
  std::atomic<int> served{0};
  EpollServer server(
      [&](const http::Request& request) {
        ++served;
        return EchoHandler(request);
      },
      0, /*num_workers=*/4);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 16;
  constexpr int kPerThread = 30;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      TcpClientTransport client("127.0.0.1", server.port());
      for (int i = 0; i < kPerThread; ++i) {
        http::Request request;
        request.target = "/t" + std::to_string(t);
        Result<http::Response> response = client.RoundTrip(request);
        if (!response.ok() ||
            response->body != "path=/t" + std::to_string(t) + ";body=") {
          ++failures;
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(served.load(), kThreads * kPerThread);
  EXPECT_GE(server.connections_accepted(), static_cast<uint64_t>(kThreads));
  server.Stop();
}

TEST(EpollServerTest, PipelinedRequestsOnOneConnection) {
  EpollServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  // Hand-rolled pipelining: two requests in one write.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  http::Request a;
  a.target = "/a";
  http::Request b;
  b.target = "/b";
  std::string wire = a.Serialize() + b.Serialize();
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  http::ResponseReader reader;
  std::vector<std::string> bodies;
  char buf[4096];
  while (bodies.size() < 2) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    while (auto next = reader.Next()) {
      ASSERT_TRUE(next->ok());
      bodies.push_back(next->value().body);
    }
  }
  EXPECT_EQ(bodies[0], "path=/a;body=");
  EXPECT_EQ(bodies[1], "path=/b;body=");
  ::close(fd);
  server.Stop();
}

TEST(EpollServerTest, PipelinedRequestsServedAfterClientHalfClose) {
  // Regression: the worker used to close on recv()==0 immediately,
  // discarding pipelined requests that arrived in the same read burst as
  // the EOF. A half-closing client must still get every response.
  EpollServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  http::Request a;
  a.target = "/a";
  http::Request b;
  b.target = "/b";
  std::string wire = a.Serialize() + b.Serialize();
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  // Half-close right away so requests and EOF land together server-side.
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  std::string received;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // Server closes after flushing both responses.
    received.append(buf, static_cast<size_t>(n));
  }
  http::ResponseReader reader;
  reader.Feed(received);
  std::vector<std::string> bodies;
  while (auto next = reader.Next()) {
    ASSERT_TRUE(next->ok());
    bodies.push_back(next->value().body);
  }
  ASSERT_EQ(bodies.size(), 2u);
  EXPECT_EQ(bodies[0], "path=/a;body=");
  EXPECT_EQ(bodies[1], "path=/b;body=");
  ::close(fd);
  server.Stop();
}

TEST(EpollServerTest, LargeResponseFlushedAfterClientHalfClose) {
  // EOF with a response still buffered: the worker must finish flushing
  // (EPOLLOUT path) before closing rather than dropping conn.out.
  std::string big(2 * 1024 * 1024, 'Y');
  EpollServer server([&](const http::Request&) {
    return http::Response::MakeOk(big);
  });
  ASSERT_TRUE(server.Start().ok());
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  http::Request request;
  std::string wire = request.Serialize();
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  std::string received;
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    received.append(buf, static_cast<size_t>(n));
  }
  http::ResponseReader reader;
  reader.Feed(received);
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  ASSERT_TRUE(next->ok());
  EXPECT_EQ(next->value().body.size(), big.size());
  ::close(fd);
  server.Stop();
}

TEST(EpollServerTest, MalformedRequestGets400AndClose) {
  EpollServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char kBad[] = "NOT HTTP AT ALL\r\n\r\n";
  ASSERT_GT(::send(fd, kBad, sizeof(kBad) - 1, 0), 0);
  std::string received;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // Server closes after the 400.
    received.append(buf, static_cast<size_t>(n));
  }
  EXPECT_NE(received.find("400 Bad Request"), std::string::npos);
  ::close(fd);
  server.Stop();
}

TEST(EpollServerTest, ConnectionCloseHeaderHonored) {
  EpollServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  http::Request request;
  request.target = "/x";
  request.headers.Add("Connection", "close");
  std::string wire = request.Serialize();
  ASSERT_GT(::send(fd, wire.data(), wire.size(), 0), 0);
  std::string received;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    received.append(buf, static_cast<size_t>(n));
  }
  // Full response then EOF.
  EXPECT_NE(received.find("Connection: close"), std::string::npos);
  EXPECT_NE(received.find("path=/x"), std::string::npos);
  ::close(fd);
  server.Stop();
}

// Fills the fd table (after clamping RLIMIT_NOFILE so this stays fast),
// returning the dummy fds that hold it full.
std::vector<int> FillFdTable() {
  std::vector<int> dummies;
  for (;;) {
    int fd = ::open("/dev/null", O_RDONLY);
    if (fd < 0) break;
    dummies.push_back(fd);
  }
  return dummies;
}

TEST(EpollServerTest, FdExhaustionIsCountedPerEpisode) {
  EpollServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  rlimit original{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &original), 0);
  rlimit tight = original;
  tight.rlim_cur = 128;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);

  for (uint64_t episode = 1; episode <= 2; ++episode) {
    // Let the previous episode's server-side connections close before
    // filling the table — an fd they free afterwards would give the
    // accept a spare slot and mask the outage.
    for (int i = 0; i < 200 && server.ingress().open_connections.load() > 0;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<int> dummies = FillFdTable();
    ASSERT_FALSE(dummies.empty());
    // Free exactly one fd: the client's socket takes it, so accept4 wakes
    // with nothing left and fails with EMFILE.
    ::close(dummies.back());
    dummies.pop_back();
    {
      TcpClientOptions options;
      options.io_timeout_micros = 300 * kMicrosPerMilli;
      TcpClientTransport starved("127.0.0.1", server.port(), options);
      http::Request request;
      // May fail or succeed depending on kernel fd accounting; only the
      // episode bookkeeping below is deterministic.
      (void)starved.RoundTrip(request);
    }
    uint64_t episodes =
        server.ingress().accept_fd_exhaustion_episodes.load();
    for (int i = 0; i < 200 && episodes < episode; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      episodes = server.ingress().accept_fd_exhaustion_episodes.load();
    }
    // One count per sustained outage, not one per accept round — the
    // level-triggered listener retries continuously while starved.
    EXPECT_EQ(episodes, episode);
    for (int fd : dummies) ::close(fd);
    // A successful accept re-arms the episode reporting — without it the
    // next outage would go uncounted (the pre-fix behaviour: the flag was
    // set once and never reset).
    TcpClientTransport recovered("127.0.0.1", server.port());
    http::Request request;
    ASSERT_TRUE(recovered.RoundTrip(request).ok());
  }

  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &original), 0);
  EXPECT_EQ(server.ingress().accept_fd_exhaustion_episodes.load(), 2u);
  server.Stop();
}

TEST(EpollServerTest, StopIsIdempotentAndRestartSafe) {
  EpollServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();
}

}  // namespace
}  // namespace dynaprox::net
