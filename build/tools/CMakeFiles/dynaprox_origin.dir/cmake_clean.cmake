file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_origin.dir/dynaprox_origin.cc.o"
  "CMakeFiles/dynaprox_origin.dir/dynaprox_origin.cc.o.d"
  "dynaprox_origin"
  "dynaprox_origin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_origin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
