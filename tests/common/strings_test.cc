#include "common/strings.h"

#include <gtest/gtest.h>

namespace dynaprox {
namespace {

TEST(StrSplitTest, SplitsKeepingEmptyPieces) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StrSplitTest, EmptyInputYieldsOneEmptyPiece) {
  auto parts = StrSplit("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StrSplitTest, TrailingSeparatorYieldsTrailingEmpty) {
  auto parts = StrSplit("x,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(EqualsIgnoreCaseTest, ComparesAsciiCaseInsensitively) {
  EXPECT_TRUE(EqualsIgnoreCase("Content-Length", "content-length"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(AsciiToLowerTest, LowercasesOnlyLetters) {
  EXPECT_EQ(AsciiToLower("MiXeD-123"), "mixed-123");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x y \t\r\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(HexTest, RoundTripsValues) {
  EXPECT_EQ(ToHex(0), "0");
  EXPECT_EQ(ToHex(255), "ff");
  EXPECT_EQ(ToHex(0xDEADBEEF), "deadbeef");
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{15}, uint64_t{16},
                     uint64_t{4096}, UINT64_MAX}) {
    Result<uint64_t> parsed = ParseHex(ToHex(v));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, v);
  }
}

TEST(HexTest, ParseAcceptsUppercase) {
  Result<uint64_t> parsed = ParseHex("FF");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, 255u);
}

TEST(HexTest, ParseRejectsBadInput) {
  EXPECT_FALSE(ParseHex("").ok());
  EXPECT_FALSE(ParseHex("xyz").ok());
  EXPECT_FALSE(ParseHex("0123456789abcdef0").ok());  // 17 digits.
}

TEST(ParseUint64Test, ParsesAndRejects) {
  EXPECT_EQ(*ParseUint64("0"), 0u);
  EXPECT_EQ(*ParseUint64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616").ok());  // Overflow.
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("12a").ok());
  EXPECT_FALSE(ParseUint64("-1").ok());
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("HTTP/1.1", "HTTP/"));
  EXPECT_FALSE(StartsWith("HT", "HTTP/"));
  EXPECT_TRUE(EndsWith("file.html", ".html"));
  EXPECT_FALSE(EndsWith("html", ".html"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

}  // namespace
}  // namespace dynaprox
