// Section 3 made measurable: the same personalized workload served by
//   (1) no cache              (ground truth, all work at the origin)
//   (2) URL-keyed page cache  (Section 3.2.1 strawman)
//   (3) ESI-style assembly    (Section 3.2.2 comparator, fixed layout)
//   (4) the DPC               (this paper)
// Reports bytes pulled from the origin, origin generation work (profile
// loads), and — the paper's core argument — how many responses were
// *wrong* (differ from the no-cache ground truth for that visitor).

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "analytical/model.h"
#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "baseline/esi.h"
#include "baseline/page_cache.h"
#include "bem/monitor.h"
#include "bench_util.h"
#include "common/rng.h"
#include "dpc/proxy.h"
#include "net/transport.h"
#include "workload/personalized_site.h"

using namespace dynaprox;

namespace {

constexpr int kRequests = 4000;
constexpr double kAnonymousFraction = 0.6;

// One configuration instance: site + optional BEM + origin.
struct Deployment {
  storage::ContentRepository repository;
  appserver::ScriptRegistry registry;
  std::unique_ptr<workload::PersonalizedSite> site;
  std::unique_ptr<bem::BackEndMonitor> monitor;
  std::unique_ptr<appserver::OriginServer> origin;
  std::unique_ptr<net::DirectTransport> origin_transport;
};

std::unique_ptr<Deployment> BuildDeployment(bool with_bem) {
  auto deployment = std::make_unique<Deployment>();
  deployment->site = std::make_unique<workload::PersonalizedSite>(
      workload::PersonalizedSiteConfig{}, &deployment->repository,
      &deployment->registry);
  if (with_bem) {
    bem::BemOptions bem_options;
    bem_options.capacity = 1024;
    deployment->monitor = *bem::BackEndMonitor::Create(bem_options);
    deployment->monitor->AttachRepository(&deployment->repository);
  }
  deployment->origin = std::make_unique<appserver::OriginServer>(
      &deployment->registry, &deployment->repository,
      deployment->monitor.get());
  deployment->origin_transport = std::make_unique<net::DirectTransport>(
      deployment->origin->AsHandler());
  return deployment;
}

struct RunResult {
  uint64_t origin_bytes = 0;
  int profile_loads = 0;
  int fragment_generations = 0;
  int wrong_pages = 0;
};

// Drives kRequests through `front`, comparing each response against the
// per-visitor ground truth.
RunResult RunConfiguration(Deployment& deployment, net::Handler front,
                           const std::map<int, std::string>& ground_truth) {
  Rng rng(1234);
  uint64_t bytes_before = deployment.origin->stats().body_bytes_sent;
  RunResult result;
  int users = deployment.site->registered_users();
  for (int i = 0; i < kRequests; ++i) {
    int user = rng.NextBool(kAnonymousFraction)
                   ? -1
                   : static_cast<int>(rng.NextBounded(users));
    http::Response response =
        front(deployment.site->VisitorRequest(user));
    if (response.status_code != 200 ||
        response.BodyText() != ground_truth.at(user)) {
      ++result.wrong_pages;
    }
  }
  result.origin_bytes =
      deployment.origin->stats().body_bytes_sent - bytes_before;
  result.profile_loads = deployment.site->work().profile_loads;
  result.fragment_generations =
      deployment.site->work().fragment_generations;
  return result;
}

std::map<int, std::string> GroundTruth() {
  std::unique_ptr<Deployment> deployment = BuildDeployment(false);
  std::map<int, std::string> truth;
  for (int user = -1; user < deployment->site->registered_users();
       ++user) {
    truth[user] =
        deployment->origin->Handle(deployment->site->VisitorRequest(user))
            .BodyText();
  }
  return truth;
}

void PrintRow(const char* label, const RunResult& result) {
  std::printf("%-18s %14llu %14d %14d %12d (%.2f%%)\n", label,
              static_cast<unsigned long long>(result.origin_bytes),
              result.fragment_generations, result.profile_loads,
              result.wrong_pages,
              100.0 * result.wrong_pages / kRequests);
}

}  // namespace

int main() {
  analytical::ModelParams params;  // Banner only.
  benchutil::PrintHeader(
      "Section 3 comparison",
      "no-cache vs page cache vs ESI assembly vs DPC (same workload)",
      params);
  std::printf("workload: %d requests to /welcome, %.0f%% anonymous, %d "
              "registered users\n\n",
              kRequests, kAnonymousFraction * 100,
              workload::PersonalizedSiteConfig{}.registered_users);
  std::printf("%-18s %14s %14s %14s %12s\n", "config", "originBytes",
              "fragGens", "profileLoads", "wrongPages");

  std::map<int, std::string> truth = GroundTruth();

  {
    auto deployment = BuildDeployment(false);
    PrintRow("no-cache",
             RunConfiguration(*deployment,
                              deployment->origin->AsHandler(), truth));
  }
  {
    auto deployment = BuildDeployment(false);
    baseline::UrlPageCache cache(deployment->origin_transport.get(),
                                 baseline::PageCacheOptions{});
    PrintRow("page-cache",
             RunConfiguration(*deployment, cache.AsHandler(), truth));
  }
  {
    auto deployment = BuildDeployment(false);
    baseline::EsiRegistry esi_registry;
    baseline::EsiTemplate welcome;
    welcome.parts.push_back(baseline::EsiPart::Literal("<html>"));
    welcome.parts.push_back(baseline::EsiPart::Include("/frag/greeting"));
    welcome.parts.push_back(baseline::EsiPart::Include("/frag/reco"));
    welcome.parts.push_back(baseline::EsiPart::Include("/frag/catalog"));
    welcome.parts.push_back(baseline::EsiPart::Literal("</html>"));
    esi_registry.Register("/welcome", std::move(welcome));
    baseline::EsiAssembler assembler(
        &esi_registry, deployment->origin_transport.get());
    PrintRow("esi-assembly",
             RunConfiguration(*deployment, assembler.AsHandler(), truth));
  }
  {
    auto deployment = BuildDeployment(true);
    dpc::ProxyOptions proxy_options;
    proxy_options.capacity = 1024;
    dpc::DpcProxy proxy(deployment->origin_transport.get(), proxy_options);
    PrintRow("dpc (this paper)",
             RunConfiguration(*deployment, proxy.AsHandler(), truth));
  }

  std::printf(
      "\nexpectation: page-cache and ESI serve wrong pages (URL-keyed "
      "caching + fixed layout); the DPC serves 0 wrong pages with origin "
      "bytes and generation work far below no-cache\n");
  benchutil::PrintFooter();
  return 0;
}
