#include "dpc/fragment_store.h"

namespace dynaprox::dpc {

Status FragmentStore::Set(bem::DpcKey key, std::string content) {
  return Set(key,
             std::make_shared<const std::string>(std::move(content)));
}

Status FragmentStore::Set(bem::DpcKey key, FragmentRef content) {
  if (key >= slots_.size()) {
    return Status::InvalidArgument("dpcKey out of range: " +
                                   std::to_string(key));
  }
  if (content == nullptr) {
    return Status::InvalidArgument("null fragment for dpcKey " +
                                   std::to_string(key));
  }
  FragmentRef fresh = std::move(content);
  size_t fresh_bytes = fresh->size();
  size_t evicted_bytes = 0;
  bool replaced = false;
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    FragmentRef& slot = slots_[key];
    if (slot != nullptr) {
      evicted_bytes = slot->size();
      replaced = true;
    }
    slot = std::move(fresh);
  }
  if (!replaced) shard.occupied.fetch_add(1, std::memory_order_relaxed);
  shard.content_bytes.fetch_add(fresh_bytes - evicted_bytes,
                                std::memory_order_relaxed);
  shard.sets.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Result<FragmentRef> FragmentStore::Get(bem::DpcKey key) {
  if (key >= slots_.size()) {
    return Status::InvalidArgument("dpcKey out of range: " +
                                   std::to_string(key));
  }
  Shard& shard = ShardFor(key);
  shard.gets.fetch_add(1, std::memory_order_relaxed);
  FragmentRef ref;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    ref = slots_[key];
  }
  if (ref == nullptr) {
    shard.get_misses.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("empty DPC slot: " + std::to_string(key));
  }
  return ref;
}

void FragmentStore::Clear() {
  // Take every shard so concurrent Sets can't interleave with the sweep.
  std::array<std::unique_lock<std::mutex>, kShards> locks;
  for (size_t i = 0; i < kShards; ++i) {
    locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
  }
  for (FragmentRef& slot : slots_) slot.reset();
  for (Shard& shard : shards_) {
    shard.occupied.store(0, std::memory_order_relaxed);
    shard.content_bytes.store(0, std::memory_order_relaxed);
  }
}

size_t FragmentStore::occupied_slots() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.occupied.load(std::memory_order_relaxed);
  }
  return total;
}

size_t FragmentStore::shard_content_bytes(size_t shard) const {
  return shards_[shard].content_bytes.load(std::memory_order_relaxed);
}

size_t FragmentStore::content_bytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.content_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

StoreStats FragmentStore::stats() const {
  StoreStats snapshot;
  for (const Shard& shard : shards_) {
    snapshot.sets += shard.sets.load(std::memory_order_relaxed);
    snapshot.gets += shard.gets.load(std::memory_order_relaxed);
    snapshot.get_misses += shard.get_misses.load(std::memory_order_relaxed);
  }
  return snapshot;
}

}  // namespace dynaprox::dpc
