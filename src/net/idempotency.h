#ifndef DYNAPROX_NET_IDEMPOTENCY_H_
#define DYNAPROX_NET_IDEMPOTENCY_H_

#include <string>
#include <string_view>
#include <vector>

#include "http/message.h"

namespace dynaprox::net {

// RFC 7231 §4.2.2 idempotent methods.
inline bool IsIdempotentMethod(std::string_view method) {
  return method == "GET" || method == "HEAD" || method == "OPTIONS" ||
         method == "TRACE" || method == "PUT" || method == "DELETE";
}

// Whether a client transport may transparently re-send `request` after a
// transport failure where bytes may already have reached the server.
// Safe when nothing was written at all, or when the request is idempotent
// and carries none of `non_idempotent_headers` — header fields (like the
// BEM refresh header) whose side effect at the origin must not run twice.
inline bool SafeToRetry(
    const http::Request& request, size_t bytes_written,
    const std::vector<std::string>& non_idempotent_headers) {
  if (bytes_written == 0) return true;
  if (!IsIdempotentMethod(request.method)) return false;
  for (const std::string& name : non_idempotent_headers) {
    if (request.headers.Has(name)) return false;
  }
  return true;
}

}  // namespace dynaprox::net

#endif  // DYNAPROX_NET_IDEMPOTENCY_H_
