#include "bem/cache_directory.h"

#include <algorithm>
#include <cassert>

#include "common/fault_point.h"
#include "common/logging.h"

namespace dynaprox::bem {

namespace {
// Bound on allocate/evict rounds in Insert. Each failed round means another
// thread won the race for the key we freed; with a sane policy the loop
// terminates in one or two rounds, so hitting the cap indicates either a
// policy with no candidates left or pathological contention — both are
// reported as CapacityExceeded rather than spinning forever.
constexpr int kMaxInsertRounds = 64;
}  // namespace

CacheDirectory::CacheDirectory(DpcKey capacity, const Clock* clock,
                               std::unique_ptr<ReplacementPolicy> policy)
    : clock_(clock),
      policy_(std::move(policy)),
      free_list_(capacity),
      key_owner_(capacity) {
  assert(clock_ != nullptr);
  assert(policy_ != nullptr);
}

bool CacheDirectory::Expired(const Entry& entry) const {
  return entry.ttl_micros > 0 &&
         clock_->NowMicros() - entry.inserted_at >= entry.ttl_micros;
}

void CacheDirectory::InvalidateEntryLocked(const std::string& canonical,
                                           Entry& entry, bool pin_key) {
  assert(entry.is_valid);
  entry.is_valid = false;
  valid_count_.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<common::ContendedMutex> policy_lock(policy_mu_);
    policy_->OnRemove(canonical);
  }
  // The key goes to the back of the free list; the DPC is *not* told
  // (paper 4.3.3: "No action is taken by the DPC"). A refresh-pinned key
  // goes to the front instead: the DPC explicitly asked for this key to
  // be regenerated, so the immediate re-render must reuse it.
  Status released = pin_key ? free_list_.ReleaseFront(entry.key)
                            : free_list_.Release(entry.key);
  assert(released.ok());
  (void)released;
}

void CacheDirectory::ReclaimKeyOwner(DpcKey key) {
  std::string owner;
  {
    std::lock_guard<std::mutex> owner_lock(owner_mu_);
    owner.swap(key_owner_[key]);
  }
  if (owner.empty()) return;
  Stripe& stripe = StripeFor(owner);
  std::lock_guard<common::ContendedMutex> lock(stripe.mu);
  auto it = stripe.entries.find(owner);
  // Erase the stale entry only if it still is the invalid incarnation that
  // released this key. (The owner record can be outdated: the fragment may
  // have been re-inserted since under a different key, overwriting its
  // entry — in that case the entry is valid and must be kept.)
  if (it != stripe.entries.end() && !it->second.is_valid &&
      it->second.key == key) {
    stripe.entries.erase(it);
  }
}

LookupResult CacheDirectory::Lookup(const FragmentId& id) {
  std::string canonical = id.Canonical();
  Stripe& stripe = StripeFor(canonical);
  std::lock_guard<common::ContendedMutex> lock(stripe.mu);
  auto it = stripe.entries.find(canonical);
  if (it == stripe.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return {LookupOutcome::kMissAbsent};
  }
  Entry& entry = it->second;
  if (!entry.is_valid) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return {LookupOutcome::kMissInvalid};
  }
  if (Expired(entry)) {
    ttl_invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    InvalidateEntryLocked(canonical, entry);
    return {LookupOutcome::kMissExpired};
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<common::ContendedMutex> policy_lock(policy_mu_);
    policy_->OnAccess(canonical);
  }
  return {LookupOutcome::kHit, entry.key};
}

Status CacheDirectory::EvictOne() {
  // Injected failure degrades like any eviction race: the Insert round
  // retries and ultimately reports CapacityExceeded (uncached emit).
  DYNAPROX_RETURN_IF_ERROR(
      chaos::InjectStatus(DYNAPROX_FAULT_POINT("bem.directory.evict")));
  // Replacement manager: evict a victim to free a key (paper 4.3.3).
  Result<std::string> victim = [&]() -> Result<std::string> {
    std::lock_guard<common::ContendedMutex> policy_lock(policy_mu_);
    return policy_->PickVictim();
  }();
  if (!victim.ok()) {
    return Status::CapacityExceeded(
        "directory full and no replacement candidate");
  }
  Status invalidated = InvalidateCanonical(*victim);
  if (invalidated.ok()) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  // NotFound means a concurrent caller invalidated the victim first; the
  // key it released is on the free list either way, so the Insert round
  // simply retries Allocate.
  return invalidated;
}

Result<DpcKey> CacheDirectory::Insert(const FragmentId& id,
                                      MicroTime ttl_micros) {
  if (Status injected = chaos::InjectStatus(
          DYNAPROX_FAULT_POINT("bem.directory.insert"));
      !injected.ok()) {
    return injected;  // Caller degrades to an uncached emit.
  }
  std::string canonical = id.Canonical();
  Stripe& stripe = StripeFor(canonical);

  // Phase A — re-inserting a valid fragment (e.g. forced refresh) releases
  // its key first so it flows through the normal allocation path.
  {
    std::lock_guard<common::ContendedMutex> lock(stripe.mu);
    auto it = stripe.entries.find(canonical);
    if (it != stripe.entries.end() && it->second.is_valid) {
      explicit_invalidations_.fetch_add(1, std::memory_order_relaxed);
      InvalidateEntryLocked(canonical, it->second);
    }
  }

  // Phase B — allocate a key, evicting victims as needed. Runs with no
  // stripe lock held: eviction touches arbitrary stripes. A freed key can
  // be snatched by a concurrent Insert before our re-Allocate; that just
  // costs another round.
  Result<DpcKey> key = Status::CapacityExceeded("unallocated");
  for (int round = 0; round < kMaxInsertRounds; ++round) {
    if (round > 0) insert_races_.fetch_add(1, std::memory_order_relaxed);
    key = free_list_.Allocate();
    if (key.ok()) break;
    Status evicted = EvictOne();
    if (evicted.IsCapacityExceeded()) return evicted;
  }
  if (!key.ok()) {
    return Status::CapacityExceeded("insert retry limit exhausted");
  }

  // Phase C — the allocated key may still be referenced by a stale invalid
  // entry (possibly this very fragment's previous incarnation). We hold
  // the key exclusively (it is off the free list), so no other thread can
  // be reclaiming it.
  ReclaimKeyOwner(*key);

  // Phase D — publish. Re-check for a concurrent insert of the same
  // fragment that won between phases A and D: its entry must be
  // invalidated (releasing its key) before being overwritten, or the key
  // would leak.
  {
    std::lock_guard<common::ContendedMutex> lock(stripe.mu);
    auto it = stripe.entries.find(canonical);
    if (it != stripe.entries.end() && it->second.is_valid) {
      insert_races_.fetch_add(1, std::memory_order_relaxed);
      explicit_invalidations_.fetch_add(1, std::memory_order_relaxed);
      InvalidateEntryLocked(canonical, it->second);
    }
    stripe.entries[canonical] =
        Entry{*key, /*is_valid=*/true, ttl_micros, clock_->NowMicros()};
    {
      std::lock_guard<std::mutex> owner_lock(owner_mu_);
      key_owner_[*key] = canonical;
    }
    valid_count_.fetch_add(1, std::memory_order_relaxed);
    inserts_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<common::ContendedMutex> policy_lock(policy_mu_);
      policy_->OnInsert(canonical);
    }
  }
  DYNAPROX_LOG(kDebug, "bem") << "insert " << canonical << " -> key " << *key;
  return *key;
}

Status CacheDirectory::Invalidate(const FragmentId& id) {
  return InvalidateCanonical(id.Canonical());
}

Status CacheDirectory::InvalidateCanonical(const std::string& canonical) {
  Stripe& stripe = StripeFor(canonical);
  std::lock_guard<common::ContendedMutex> lock(stripe.mu);
  auto it = stripe.entries.find(canonical);
  if (it == stripe.entries.end() || !it->second.is_valid) {
    return Status::NotFound("no valid entry: " + canonical);
  }
  explicit_invalidations_.fetch_add(1, std::memory_order_relaxed);
  InvalidateEntryLocked(canonical, it->second);
  return Status::Ok();
}

Result<std::string> CacheDirectory::InvalidateKey(DpcKey key, bool pin_key) {
  if (key >= key_owner_.size()) {
    return Status::InvalidArgument("dpcKey out of range: " +
                                   std::to_string(key));
  }
  std::string owner;
  {
    std::lock_guard<std::mutex> owner_lock(owner_mu_);
    owner = key_owner_[key];
  }
  if (owner.empty()) {
    return Status::NotFound("key has no owner: " + std::to_string(key));
  }
  Stripe& stripe = StripeFor(owner);
  std::lock_guard<common::ContendedMutex> lock(stripe.mu);
  // Re-validate under the stripe lock: the owner record was read without
  // it, and the key may have been reassigned in between.
  auto it = stripe.entries.find(owner);
  if (it == stripe.entries.end() || !it->second.is_valid ||
      it->second.key != key) {
    return Status::NotFound("key has no valid owner: " + std::to_string(key));
  }
  explicit_invalidations_.fetch_add(1, std::memory_order_relaxed);
  InvalidateEntryLocked(owner, it->second, pin_key);
  return owner;
}

size_t CacheDirectory::InvalidateAll() {
  size_t count = 0;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<common::ContendedMutex> lock(stripe.mu);
    for (auto& [canonical, entry] : stripe.entries) {
      if (!entry.is_valid) continue;
      explicit_invalidations_.fetch_add(1, std::memory_order_relaxed);
      InvalidateEntryLocked(canonical, entry);
      ++count;
    }
  }
  return count;
}

size_t CacheDirectory::SweepExpired() {
  size_t count = 0;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<common::ContendedMutex> lock(stripe.mu);
    for (auto& [canonical, entry] : stripe.entries) {
      if (!entry.is_valid || !Expired(entry)) continue;
      ttl_invalidations_.fetch_add(1, std::memory_order_relaxed);
      InvalidateEntryLocked(canonical, entry);
      ++count;
    }
  }
  return count;
}

size_t CacheDirectory::entry_count() const {
  size_t count = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<common::ContendedMutex> lock(stripe.mu);
    count += stripe.entries.size();
  }
  return count;
}

DirectoryStats CacheDirectory::stats() const {
  DirectoryStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.ttl_invalidations =
      ttl_invalidations_.load(std::memory_order_relaxed);
  stats.explicit_invalidations =
      explicit_invalidations_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

CacheDirectory::ConcurrencyStats CacheDirectory::concurrency_stats() const {
  ConcurrencyStats stats;
  for (const Stripe& stripe : stripes_) {
    stats.stripe_contentions += stripe.mu.contended_acquisitions();
  }
  stats.policy_contentions = policy_mu_.contended_acquisitions();
  stats.free_list_contentions = free_list_.contentions();
  stats.insert_races = insert_races_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<CacheDirectory::EntryView> CacheDirectory::SnapshotEntries(
    size_t limit) const {
  std::vector<EntryView> out;
  MicroTime now = clock_->NowMicros();
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<common::ContendedMutex> lock(stripe.mu);
    for (const auto& [canonical, entry] : stripe.entries) {
      out.push_back({canonical, entry.key, entry.is_valid,
                     now - entry.inserted_at, entry.ttl_micros});
    }
  }
  // Stripe iteration interleaves canonical order; restore it so snapshots
  // stay deterministic for tests and status pages.
  std::sort(out.begin(), out.end(),
            [](const EntryView& a, const EntryView& b) {
              return a.fragment_id < b.fragment_id;
            });
  if (limit != 0 && out.size() > limit) out.resize(limit);
  return out;
}

Result<DpcKey> CacheDirectory::KeyOf(const FragmentId& id) const {
  std::string canonical = id.Canonical();
  const Stripe& stripe = StripeFor(canonical);
  std::lock_guard<common::ContendedMutex> lock(stripe.mu);
  auto it = stripe.entries.find(canonical);
  if (it == stripe.entries.end() || !it->second.is_valid) {
    return Status::NotFound("no valid entry: " + canonical);
  }
  return it->second.key;
}

}  // namespace dynaprox::bem
