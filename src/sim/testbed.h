#ifndef DYNAPROX_SIM_TESTBED_H_
#define DYNAPROX_SIM_TESTBED_H_

#include <cstdint>
#include <memory>
#include <string>

#include "analytical/model.h"
#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "common/result.h"
#include "dpc/proxy.h"
#include "firewall/firewall.h"
#include "net/byte_meter.h"
#include "net/transport.h"
#include "storage/table.h"
#include "workload/driver.h"
#include "workload/request_stream.h"
#include "workload/synthetic_site.h"

namespace dynaprox::sim {

// Configuration of one end-to-end testbed instance (the reproduction of
// Figure 4's test configuration).
struct TestbedConfig {
  analytical::ModelParams params;
  // true: clients -> DPC -> (metered link) -> origin+BEM.
  // false: clients -> (metered link) -> origin. The no-cache baseline.
  bool with_cache = true;
  uint64_t seed = 42;
  // Protocol-overhead model for the metered origin link (what the Sniffer
  // sees). Payload bytes are always recorded alongside.
  net::ProtocolModel link_model;
  // dpcKey space; 0 derives a default comfortably above the working set so
  // replacement churn only reclaims dead fragment versions.
  bem::DpcKey capacity = 0;
  std::string replacement_policy = "lru";
  // Put a scanning firewall on the origin link (Figure 4's topology), so
  // scan-cost bytes (Section 5's Result 1) can be *measured*, not just
  // modeled.
  bool with_firewall = false;
};

// Byte counts and cache behaviour observed over a measurement window.
struct Measurement {
  uint64_t requests = 0;
  // Origin -> DPC (or origin -> clients in the baseline) traffic: the B of
  // Section 5.
  uint64_t response_payload_bytes = 0;  // Application bytes.
  uint64_t response_wire_bytes = 0;     // Including protocol headers.
  uint64_t response_messages = 0;
  // DPC -> origin (requests); small but nonzero.
  uint64_t request_payload_bytes = 0;
  uint64_t request_wire_bytes = 0;
  // Fragment-cache behaviour during the window (cache config only).
  uint64_t fragment_hits = 0;
  uint64_t fragment_misses = 0;
  // Bytes actually scanned: firewall bytes plus (cache config) the DPC's
  // template scan — the measured form of Section 5's scan-cost analysis.
  uint64_t firewall_scanned_bytes = 0;
  uint64_t dpc_scanned_bytes = 0;
  uint64_t total_scanned_bytes() const {
    return firewall_scanned_bytes + dpc_scanned_bytes;
  }

  double RealizedHitRatio() const {
    uint64_t total = fragment_hits + fragment_misses;
    return total == 0 ? 0.0 : static_cast<double>(fragment_hits) / total;
  }
};

// Wires the full system in-process with a metered origin link:
//
//   workload -> [DpcProxy] -> ByteMeter -> OriginServer(+BEM) -> repository
//
// and runs request batches against it. Single-threaded and deterministic.
class Testbed {
 public:
  static Result<std::unique_ptr<Testbed>> Create(TestbedConfig config);

  // Replays `count` Zipf-distributed requests through the client edge.
  workload::DriverStats Run(uint64_t count);

  // Starts a fresh measurement window (typically after warmup).
  void BeginMeasurement();

  // Measurement since the last BeginMeasurement (or construction).
  Measurement Collect() const;

  const TestbedConfig& config() const { return config_; }
  bem::BackEndMonitor* monitor() { return monitor_.get(); }  // Null: baseline.
  dpc::DpcProxy* proxy() { return proxy_.get(); }            // Null: baseline.
  appserver::OriginServer& origin() { return *origin_; }
  workload::SyntheticSite& site() { return *site_; }
  storage::ContentRepository& repository() { return repository_; }

 private:
  explicit Testbed(TestbedConfig config);
  Status Init();

  TestbedConfig config_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<workload::SyntheticSite> site_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<appserver::OriginServer> origin_;
  net::ByteMeter request_meter_;
  net::ByteMeter response_meter_;
  std::unique_ptr<net::MeteredTransport> origin_link_;
  std::unique_ptr<firewall::ScanningFirewall> firewall_;  // Optional.
  std::unique_ptr<dpc::DpcProxy> proxy_;
  std::unique_ptr<net::Transport> client_edge_;
  std::unique_ptr<workload::RequestStream> stream_;

  // Snapshots at BeginMeasurement for windowed deltas.
  struct MeterSnapshot {
    uint64_t messages = 0;
    uint64_t payload_bytes = 0;
    uint64_t wire_bytes = 0;
  };
  MeterSnapshot request_snapshot_;
  MeterSnapshot response_snapshot_;
  uint64_t hits_snapshot_ = 0;
  uint64_t misses_snapshot_ = 0;
  uint64_t firewall_scanned_snapshot_ = 0;
  uint64_t dpc_scanned_snapshot_ = 0;
  uint64_t requests_snapshot_ = 0;
  uint64_t requests_total_ = 0;
};

}  // namespace dynaprox::sim

#endif  // DYNAPROX_SIM_TESTBED_H_
