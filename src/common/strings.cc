#include "common/strings.h"

#include <cctype>

namespace dynaprox {

std::vector<std::string_view> StrSplit(std::string_view input, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      parts.push_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToHex(uint64_t value) {
  if (value == 0) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  char buf[16];
  int pos = 16;
  while (value != 0) {
    buf[--pos] = kDigits[value & 0xF];
    value >>= 4;
  }
  return std::string(buf + pos, 16 - pos);
}

Result<uint64_t> ParseHex(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty hex string");
  if (s.size() > 16) return Status::InvalidArgument("hex string too long");
  uint64_t value = 0;
  for (char c : s) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return Status::InvalidArgument("invalid hex character");
    }
  }
  return value;
}

Result<uint64_t> ParseUint64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer string");
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid decimal character");
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument("integer overflow");
    }
    value = value * 10 + digit;
  }
  return value;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace dynaprox
