#include "workload/synthetic_site.h"

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "common/clock.h"
#include "dpc/assembler.h"
#include "dpc/fragment_store.h"
#include "workload/request_stream.h"

namespace dynaprox::workload {
namespace {

analytical::ModelParams SmallParams() {
  analytical::ModelParams params;
  params.num_pages = 4;
  params.fragments_per_page = 3;
  params.fragment_size = 200;
  params.cacheability = 2.0 / 3.0;  // Exactly 2 of 3 fragments.
  params.hit_ratio = 1.0;           // Deterministic: never bump versions.
  params.header_size = 0;
  return params;
}

class SyntheticSiteTest : public ::testing::Test {
 protected:
  void Build(const analytical::ModelParams& params, bool with_bem) {
    site_ = std::make_unique<SyntheticSite>(params, 99, &repository_,
                                            &registry_);
    if (with_bem) {
      bem::BemOptions options;
      options.capacity = 64;
      options.clock = &clock_;
      monitor_ = *bem::BackEndMonitor::Create(options);
    }
    origin_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, monitor_.get());
  }

  http::Response Fetch(int page) {
    RequestStream stream(site_->num_pages(), 1.0, 1);
    return origin_->Handle(stream.ForPage(page));
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<SyntheticSite> site_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<appserver::OriginServer> origin_;
};

TEST_F(SyntheticSiteTest, BaselinePageHasExactSize) {
  analytical::ModelParams params = SmallParams();
  Build(params, /*with_bem=*/false);
  http::Response response = Fetch(0);
  ASSERT_EQ(response.status_code, 200);
  // Body = fragments only, each exactly fragment_size bytes.
  EXPECT_EQ(response.body.size(),
            static_cast<size_t>(params.fragments_per_page *
                                params.fragment_size));
}

TEST_F(SyntheticSiteTest, AllPagesServeAndDiffer) {
  Build(SmallParams(), false);
  std::set<std::string> bodies;
  for (int page = 0; page < site_->num_pages(); ++page) {
    http::Response response = Fetch(page);
    ASSERT_EQ(response.status_code, 200);
    bodies.insert(response.body);
  }
  EXPECT_EQ(bodies.size(), static_cast<size_t>(site_->num_pages()));
}

TEST_F(SyntheticSiteTest, UnknownPageIs404) {
  Build(SmallParams(), false);
  http::Response response = Fetch(99);
  EXPECT_EQ(response.status_code, 404);
  http::Request no_id;
  no_id.target = "/page";
  EXPECT_EQ(origin_->Handle(no_id).status_code, 404);
}

TEST_F(SyntheticSiteTest, TemplateAssemblesToBaselinePage) {
  analytical::ModelParams params = SmallParams();
  Build(params, /*with_bem=*/true);
  http::Response templated = Fetch(1);
  ASSERT_EQ(templated.status_code, 200);
  dpc::FragmentStore store(monitor_->capacity());
  Result<dpc::AssembledPage> page =
      dpc::AssemblePage(templated.body, store);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->body.size(),
            static_cast<size_t>(params.fragments_per_page *
                                params.fragment_size));
  EXPECT_EQ(page->set_count, 2u);  // Two cacheable fragments.
}

TEST_F(SyntheticSiteTest, SecondRequestUsesGets) {
  Build(SmallParams(), true);
  http::Response first = Fetch(1);
  http::Response second = Fetch(1);
  // GET templates are dramatically smaller.
  EXPECT_LT(second.body.size(), first.body.size());
  dpc::FragmentStore store(monitor_->capacity());
  ASSERT_TRUE(dpc::AssemblePage(first.body, store).ok());
  Result<dpc::AssembledPage> assembled =
      dpc::AssemblePage(second.body, store);
  ASSERT_TRUE(assembled.ok());
  EXPECT_EQ(assembled->get_count, 2u);
  EXPECT_EQ(assembled->set_count, 0u);
  EXPECT_EQ(site_->version_bumps(), 0u);  // h = 1.
}

TEST_F(SyntheticSiteTest, ZeroHitRatioAlwaysMisses) {
  analytical::ModelParams params = SmallParams();
  params.hit_ratio = 0.0;
  Build(params, true);
  Fetch(1);
  Fetch(1);
  Fetch(1);
  EXPECT_EQ(monitor_->stats().hits, 0u);
  EXPECT_EQ(site_->version_bumps(), site_->fragment_accesses());
}

TEST_F(SyntheticSiteTest, IntermediateHitRatioConverges) {
  analytical::ModelParams params = SmallParams();
  params.hit_ratio = 0.7;
  params.num_pages = 2;
  Build(params, true);
  for (int i = 0; i < 2000; ++i) {
    Fetch(i % 2);
  }
  const bem::DirectoryStats& stats = monitor_->stats();
  double realized = static_cast<double>(stats.hits) /
                    static_cast<double>(stats.hits + stats.misses);
  EXPECT_NEAR(realized, 0.7, 0.05);
}

TEST_F(SyntheticSiteTest, SharedPoolWarmsAcrossPages) {
  analytical::ModelParams params = SmallParams();  // 4 pages x 3 frags.
  SyntheticSiteOptions options;
  options.fragment_pool = 3;  // Every page uses the same three slots.
  site_ = std::make_unique<SyntheticSite>(params, 99, &repository_,
                                          &registry_, options);
  EXPECT_EQ(site_->fragment_slots(), 3);
  bem::BemOptions bem_options;
  bem_options.capacity = 64;
  bem_options.clock = &clock_;
  monitor_ = *bem::BackEndMonitor::Create(bem_options);
  origin_ = std::make_unique<appserver::OriginServer>(
      &registry_, &repository_, monitor_.get());

  // Page 0 warms the pool; page 1 then hits on its cacheable positions.
  Fetch(0);
  uint64_t misses_after_first = monitor_->stats().misses;
  Fetch(1);
  EXPECT_EQ(monitor_->stats().misses, misses_after_first);
  EXPECT_GE(monitor_->stats().hits, 2u);
  // With full sharing, every page's body is identical.
  EXPECT_EQ(Fetch(0).body, Fetch(3).body);
}

TEST_F(SyntheticSiteTest, PoolLargerThanPositionsBehavesLikePerPage) {
  analytical::ModelParams params = SmallParams();
  SyntheticSiteOptions options;
  options.fragment_pool = 1000;  // Clamped to total positions.
  site_ = std::make_unique<SyntheticSite>(params, 99, &repository_,
                                          &registry_, options);
  EXPECT_EQ(site_->fragment_slots(),
            params.num_pages * params.fragments_per_page);
}

TEST_F(SyntheticSiteTest, TinyFragmentsStillExactSize) {
  analytical::ModelParams params = SmallParams();
  params.fragment_size = 8;  // Below the HTML frame size.
  Build(params, false);
  http::Response response = Fetch(0);
  EXPECT_EQ(response.body.size(), static_cast<size_t>(3 * 8));
}

}  // namespace
}  // namespace dynaprox::workload
