#ifndef DYNAPROX_NET_TRANSPORT_H_
#define DYNAPROX_NET_TRANSPORT_H_

#include <functional>
#include <memory>

#include "common/result.h"
#include "http/message.h"
#include "net/byte_meter.h"

namespace dynaprox::net {

// A request handler: the server side of a transport endpoint.
using Handler = std::function<http::Response(const http::Request&)>;

// Client view of a request/response channel. Implementations: in-process
// direct dispatch (deterministic simulation) and TCP (real deployment).
class Transport {
 public:
  virtual ~Transport() = default;

  // Sends `request` and waits for the response.
  virtual Result<http::Response> RoundTrip(const http::Request& request) = 0;
};

// In-process transport that invokes a Handler directly. Used by the
// simulation testbed so byte accounting is exact and runs are deterministic.
class DirectTransport : public Transport {
 public:
  explicit DirectTransport(Handler handler) : handler_(std::move(handler)) {}

  Result<http::Response> RoundTrip(const http::Request& request) override {
    return handler_(request);
  }

 private:
  Handler handler_;
};

// Decorator that meters the serialized size of every request and response
// crossing the wrapped transport. `request_meter`/`response_meter` may be
// null; metering then is skipped for that direction.
class MeteredTransport : public Transport {
 public:
  MeteredTransport(std::unique_ptr<Transport> inner, ByteMeter* request_meter,
                   ByteMeter* response_meter)
      : inner_(std::move(inner)),
        request_meter_(request_meter),
        response_meter_(response_meter) {}

  Result<http::Response> RoundTrip(const http::Request& request) override {
    if (request_meter_ != nullptr) {
      request_meter_->RecordMessage(request.SerializedSize());
    }
    Result<http::Response> response = inner_->RoundTrip(request);
    if (response.ok() && response_meter_ != nullptr) {
      response_meter_->RecordMessage(response->SerializedSize());
    }
    return response;
  }

 private:
  std::unique_ptr<Transport> inner_;
  ByteMeter* request_meter_;
  ByteMeter* response_meter_;
};

}  // namespace dynaprox::net

#endif  // DYNAPROX_NET_TRANSPORT_H_
