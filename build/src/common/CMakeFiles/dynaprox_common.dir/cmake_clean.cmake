file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_common.dir/clock.cc.o"
  "CMakeFiles/dynaprox_common.dir/clock.cc.o.d"
  "CMakeFiles/dynaprox_common.dir/flags.cc.o"
  "CMakeFiles/dynaprox_common.dir/flags.cc.o.d"
  "CMakeFiles/dynaprox_common.dir/histogram.cc.o"
  "CMakeFiles/dynaprox_common.dir/histogram.cc.o.d"
  "CMakeFiles/dynaprox_common.dir/json.cc.o"
  "CMakeFiles/dynaprox_common.dir/json.cc.o.d"
  "CMakeFiles/dynaprox_common.dir/logging.cc.o"
  "CMakeFiles/dynaprox_common.dir/logging.cc.o.d"
  "CMakeFiles/dynaprox_common.dir/rng.cc.o"
  "CMakeFiles/dynaprox_common.dir/rng.cc.o.d"
  "CMakeFiles/dynaprox_common.dir/status.cc.o"
  "CMakeFiles/dynaprox_common.dir/status.cc.o.d"
  "CMakeFiles/dynaprox_common.dir/strings.cc.o"
  "CMakeFiles/dynaprox_common.dir/strings.cc.o.d"
  "libdynaprox_common.a"
  "libdynaprox_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
