// Ablation: replacement policy (lru vs fifo vs clock) under a constrained
// dpcKey space. DESIGN.md calls out the replacement manager as a design
// choice; this bench shows its effect on hit ratio and origin bytes when
// the directory is capacity-bound.

#include <cstdio>

#include "analytical/model.h"
#include "bench_util.h"
#include "sim/testbed.h"

int main() {
  using namespace dynaprox;

  analytical::ModelParams params =
      analytical::ModelParams::Table2Baseline();
  // Stress the key space: more pages than the default, tiny capacity.
  params.num_pages = 40;
  benchutil::PrintHeader("Ablation", "Replacement policy under key pressure",
                         params);

  std::printf("%8s %10s %14s %14s %12s %12s\n", "policy", "capacity",
              "hitRatio", "evictions", "payloadB", "recoveries");
  for (bem::DpcKey capacity : {64u, 128u, 256u, 1024u}) {
    for (const char* policy : {"lru", "fifo", "clock"}) {
      sim::TestbedConfig config;
      config.params = params;
      config.with_cache = true;
      config.capacity = capacity;
      config.replacement_policy = policy;
      config.seed = 3;
      auto testbed = sim::Testbed::Create(config);
      if (!testbed.ok()) {
        std::printf("setup failed: %s\n",
                    testbed.status().ToString().c_str());
        return 1;
      }
      (*testbed)->Run(2000);
      (*testbed)->BeginMeasurement();
      (*testbed)->Run(8000);
      sim::Measurement m = (*testbed)->Collect();
      std::printf("%8s %10u %14.4f %14llu %12llu %12llu\n", policy,
                  capacity, m.RealizedHitRatio(),
                  static_cast<unsigned long long>(
                      (*testbed)->monitor()->stats().evictions),
                  static_cast<unsigned long long>(m.response_payload_bytes),
                  static_cast<unsigned long long>(
                      (*testbed)->proxy()->stats().recoveries));
    }
  }
  std::printf(
      "expectation: at tight capacities LRU/clock keep live fragment "
      "versions over dead ones and beat FIFO; all converge when capacity "
      "clears the working set\n");
  benchutil::PrintFooter();
  return 0;
}
