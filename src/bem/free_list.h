#ifndef DYNAPROX_BEM_FREE_LIST_H_
#define DYNAPROX_BEM_FREE_LIST_H_

#include <deque>
#include <mutex>

#include "bem/types.h"
#include "common/contended_mutex.h"
#include "common/result.h"

namespace dynaprox::bem {

// FIFO free list of dpcKeys (paper 4.3.3). Initially holds every key in
// [0, capacity). When a fragment becomes invalid its key is pushed at the
// *end*, so a key is only reassigned after all keys freed before it — giving
// invalid DPC slots the longest possible grace period before they are
// overwritten by a SET for a different fragment.
//
// Paper requirement: "the size of the freeList should be at least as large
// as the maximum cache size" — enforced: Release on a full list fails.
//
// Thread-safe: one internal mutex serializes the deque operations — they
// are O(1) pointer moves, so the critical section is tiny. The mutex
// counts contended acquisitions (contentions()) because the free list is
// the one structure every parallel Insert still shares after the
// directory went stripe-locked; the counter shows whether it becomes the
// next bottleneck.
class FreeList {
 public:
  // Fills the list with keys 0..capacity-1.
  explicit FreeList(DpcKey capacity);

  // Pops the oldest free key; CapacityExceeded when none are free.
  Result<DpcKey> Allocate();

  // Returns `key` to the tail. Fails on out-of-range keys and when the list
  // is already full (double release).
  Status Release(DpcKey key);

  // Returns `key` to the HEAD, so the next Allocate hands it right back.
  // Used by refresh-driven invalidation (DPC cold-cache recovery): the DPC
  // asked for this exact key to be regenerated, so the re-rendered fragment
  // must reuse it — a committed stream is waiting to splice `GET key`.
  Status ReleaseFront(DpcKey key);

  size_t free_count() const {
    std::lock_guard<common::ContendedMutex> lock(mu_);
    return list_.size();
  }
  DpcKey capacity() const { return capacity_; }
  bool empty() const { return free_count() == 0; }

  // Contended acquisitions of the internal mutex (see class comment).
  uint64_t contentions() const { return mu_.contended_acquisitions(); }

 private:
  const DpcKey capacity_;
  mutable common::ContendedMutex mu_;
  std::deque<DpcKey> list_;  // Guarded by mu_.
};

}  // namespace dynaprox::bem

#endif  // DYNAPROX_BEM_FREE_LIST_H_
