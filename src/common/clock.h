#ifndef DYNAPROX_COMMON_CLOCK_H_
#define DYNAPROX_COMMON_CLOCK_H_

#include <cstdint>

namespace dynaprox {

// Monotonic time in microseconds since an arbitrary epoch.
using MicroTime = int64_t;

constexpr MicroTime kMicrosPerSecond = 1'000'000;
constexpr MicroTime kMicrosPerMilli = 1'000;

// Clock abstracts time so that TTL expiry is testable and simulations are
// deterministic. All cache-directory TTL logic reads time through a Clock.
class Clock {
 public:
  virtual ~Clock() = default;
  // Returns the current time in microseconds.
  virtual MicroTime NowMicros() const = 0;
};

// Wall-clock implementation backed by std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  MicroTime NowMicros() const override;

  // Process-wide shared instance (never destroyed).
  static SystemClock* Default();
};

// Manually advanced clock for tests and simulations.
class SimClock : public Clock {
 public:
  explicit SimClock(MicroTime start = 0) : now_(start) {}

  MicroTime NowMicros() const override { return now_; }

  void AdvanceMicros(MicroTime delta) { now_ += delta; }
  void AdvanceSeconds(double seconds) {
    now_ += static_cast<MicroTime>(seconds * kMicrosPerSecond);
  }
  void SetMicros(MicroTime t) { now_ = t; }

 private:
  MicroTime now_;
};

}  // namespace dynaprox

#endif  // DYNAPROX_COMMON_CLOCK_H_
