#include "common/histogram.h"

#include <gtest/gtest.h>

namespace dynaprox {
namespace {

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
}

TEST(HistogramTest, PercentilesNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
}

TEST(HistogramTest, RecordAfterQueryStaysCorrect) {
  Histogram h;
  h.Record(10);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 10.0);
  h.Record(1);  // Re-sorts lazily on the next query.
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Record(7);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0);
}

TEST(HistogramTest, MergeAbsorbsAllSamples) {
  Histogram a;
  Histogram b;
  for (double v : {1.0, 2.0, 3.0}) a.Record(v);
  for (double v : {10.0, 20.0}) b.Record(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);
  EXPECT_DOUBLE_EQ(a.mean(), 36.0 / 5);
  // The source is untouched.
  EXPECT_EQ(b.count(), 2u);
}

TEST(HistogramTest, MergeEmptyIsNoOp) {
  Histogram a;
  a.Record(4);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 4.0);
}

TEST(HistogramTest, SelfMergeDoublesEverySample) {
  // Inserting a container's own range into itself invalidates the source
  // iterators mid-copy; Merge must handle &other == this explicitly.
  Histogram h;
  for (double v : {1.0, 2.0, 3.0}) h.Record(v);
  h.Merge(h);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 2.0);
}

TEST(HistogramTest, MergeAfterQueryResorts) {
  Histogram a;
  a.Record(5);
  EXPECT_DOUBLE_EQ(a.Percentile(0.5), 5.0);  // Forces the sorted state.
  Histogram b;
  b.Record(1);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(HistogramTest, OutOfRangeQuantileClamped) {
  Histogram h;
  h.Record(3);
  EXPECT_DOUBLE_EQ(h.Percentile(-1), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(2), 3.0);
}

}  // namespace
}  // namespace dynaprox
