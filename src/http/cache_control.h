#ifndef DYNAPROX_HTTP_CACHE_CONTROL_H_
#define DYNAPROX_HTTP_CACHE_CONTROL_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "http/message.h"

namespace dynaprox::http {

// Parsed Cache-Control response directives (the subset a shared proxy
// cache needs).
struct CacheControl {
  bool no_store = false;
  bool no_cache = false;
  bool is_private = false;   // "private": shared caches must not store.
  bool is_public = false;
  std::optional<int64_t> max_age_seconds;
  std::optional<int64_t> s_maxage_seconds;  // Overrides max-age for proxies.

  // Effective freshness lifetime for a shared cache, if storable.
  std::optional<int64_t> SharedMaxAgeSeconds() const {
    if (s_maxage_seconds.has_value()) return s_maxage_seconds;
    return max_age_seconds;
  }

  // True if a shared proxy cache may store the response.
  bool StorableByProxy() const {
    if (no_store || is_private) return false;
    auto age = SharedMaxAgeSeconds();
    return age.has_value() && *age > 0;
  }
};

// Parses a Cache-Control field value ("public, max-age=3600"). Unknown
// directives are ignored; malformed ages are treated as absent.
CacheControl ParseCacheControl(std::string_view value);

// Convenience: parses the response's Cache-Control header (empty header ->
// default-constructed CacheControl, which is not storable).
CacheControl ResponseCacheControl(const Response& response);

}  // namespace dynaprox::http

#endif  // DYNAPROX_HTTP_CACHE_CONTROL_H_
