#include "common/access_log.h"

#include <chrono>
#include <fstream>
#include <iostream>

#include "common/json.h"
#include "common/strings.h"

namespace dynaprox {

RequestIdGenerator::RequestIdGenerator() {
  uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  // splitmix64 finisher over clock ^ address: distinct per process and
  // per generator without pulling in a seeded-RNG dependency.
  uint64_t x = now ^ reinterpret_cast<uintptr_t>(this);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  prefix_ = x & 0xffffffffull;  // 32 bits keeps ids short.
}

std::string RequestIdGenerator::Next() {
  return ToHex(prefix_) + "-" +
         ToHex(next_.fetch_add(1, std::memory_order_relaxed));
}

AccessLogger::AccessLogger(std::unique_ptr<std::ostream> owned)
    : owned_(std::move(owned)), out_(owned_.get()) {}

Result<std::unique_ptr<AccessLogger>> AccessLogger::Open(
    const std::string& path) {
  if (path == "-") {
    return std::unique_ptr<AccessLogger>(new AccessLogger(&std::cerr));
  }
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!file->is_open()) {
    return Status::IoError("cannot open access log '" + path + "'");
  }
  return std::unique_ptr<AccessLogger>(
      new AccessLogger(std::unique_ptr<std::ostream>(std::move(file))));
}

void AccessLogger::Log(const AccessLogEntry& entry) {
  JsonWriter json;
  json.BeginObject();
  json.Key("ts_us").Int(entry.timestamp_micros);
  json.Key("component").String(entry.component);
  json.Key("id").String(entry.request_id);
  json.Key("method").String(entry.method);
  json.Key("path").String(entry.target);
  json.Key("status").Int(entry.status);
  json.Key("bytes").Uint(entry.bytes_sent);
  json.Key("duration_us").Int(entry.duration_micros);
  json.Key("outcome").String(entry.outcome);
  json.EndObject();
  std::string line = json.TakeString();
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  *out_ << line;
  out_->flush();
}

}  // namespace dynaprox
