file(REMOVE_RECURSE
  "libdynaprox_common.a"
)
