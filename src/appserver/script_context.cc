#include "appserver/script_context.h"

#include "bem/tag_codec.h"
#include "common/fault_point.h"
#include "common/logging.h"

namespace dynaprox::appserver {

ScriptContext::ScriptContext(const http::Request& request,
                             storage::ContentRepository* repository,
                             bem::BackEndMonitor* monitor,
                             const ScriptMetrics* metrics,
                             common::ThreadPool* block_pool)
    : request_(request),
      repository_(repository),
      monitor_(monitor),
      metrics_(metrics),
      block_pool_(block_pool) {}

ScriptContext::~ScriptContext() {
  // A script may fail between dispatching generators and FinishBlocks;
  // the tasks capture pointers into this object, so wait them out.
  WaitForBlocks();
}

void ScriptContext::ObserveStage(metrics::LatencyHistogram* histogram,
                                 MicroTime micros) const {
  if (histogram == nullptr) return;
  histogram->Observe(static_cast<double>(micros) / kMicrosPerSecond);
}

void ScriptContext::ForceMiss(std::string canonical) {
  force_miss_.push_back(std::move(canonical));
}

std::string* ScriptContext::sink() {
  return in_block_ ? &block_buffer_ : &body_;
}

void ScriptContext::Emit(std::string_view text) {
  if (monitor_ != nullptr && !in_block_) {
    // Top-level text goes into the template escaped, so fragment content
    // containing the tag marker can never confuse the DPC scanner.
    bem::TagCodec::AppendLiteral(text, body_);
  } else {
    sink()->append(text);
  }
}

void ScriptContext::RegisterAndEmit(
    const bem::FragmentId& id, MicroTime ttl_micros, std::string&& output,
    std::vector<std::pair<std::string, std::string>>&& deps,
    std::string& out) {
  const bool instrumented = timed();
  const Clock* clock = instrumented ? metrics_->clock : nullptr;

  ++stats_.misses;
  Result<bem::DpcKey> key = monitor_->InsertFragment(id, ttl_micros);
  if (!key.ok()) {
    // Directory full and unevictable: degrade to uncached emission.
    DYNAPROX_LOG(kWarning, "appserver")
        << "fragment " << id.Canonical()
        << " not cached: " << key.status().ToString();
    ++stats_.uncacheable;
    bem::TagCodec::AppendLiteral(output, out);
    return;
  }
  for (const auto& [table, row_key] : deps) {
    monitor_->AddDependency(id, table, row_key);
  }
  inserted_.emplace_back(id.Canonical(), *key);
  if (capture_ != nullptr) {
    capture_->push_back(CapturedFragment{id.Canonical(), *key, output});
  }
  used_tagging_ = true;
  MicroTime emit_start = instrumented ? clock->NowMicros() : 0;
  bem::TagCodec::AppendSet(*key, output, out);
  if (instrumented) {
    ObserveStage(metrics_->tag_emission, clock->NowMicros() - emit_start);
  }
}

Status ScriptContext::CacheableBlock(const bem::FragmentId& id,
                                     MicroTime ttl_micros,
                                     const BlockFn& generate) {
  if (in_block_) {
    return Status::FailedPrecondition(
        "nested cacheable blocks are not supported (fragment " +
        id.Canonical() + ")");
  }

  const bool instrumented = timed();
  const Clock* clock = instrumented ? metrics_->clock : nullptr;

  if (monitor_ == nullptr) {
    // No-cache baseline: the block runs inline on every request. Still
    // timed so B_C and B_NC generator costs compare from one histogram.
    ++stats_.uncacheable;
    MicroTime start = instrumented ? clock->NowMicros() : 0;
    Status generated = generate(*this);
    if (instrumented) {
      ObserveStage(metrics_->block_execution, clock->NowMicros() - start);
    }
    return generated;
  }

  // Refresh recovery: a forced canonical skips the lookup entirely. A hit
  // here would emit GET for content the DPC told us it does not have —
  // the valid entry may come from a concurrent request whose SET is still
  // in flight in that request's response.
  bool forced = false;
  for (auto it = force_miss_.begin(); it != force_miss_.end(); ++it) {
    if (*it == id.Canonical()) {
      force_miss_.erase(it);
      forced = true;
      ++stats_.forced_misses;
      break;
    }
  }

  MicroTime lookup_start = instrumented ? clock->NowMicros() : 0;
  bem::LookupResult lookup =
      forced ? bem::LookupResult{bem::LookupOutcome::kMissInvalid,
                                 bem::kInvalidDpcKey}
             : monitor_->LookupFragment(id);
  if (instrumented && !forced) {
    ObserveStage(metrics_->directory_lookup,
                 clock->NowMicros() - lookup_start);
  }
  if (lookup.hit()) {
    ++stats_.hits;
    used_tagging_ = true;
    MicroTime emit_start = instrumented ? clock->NowMicros() : 0;
    bem::TagCodec::AppendGet(lookup.key, body_);
    if (instrumented) {
      ObserveStage(metrics_->tag_emission, clock->NowMicros() - emit_start);
    }
    return Status::Ok();
  }

  if (parallel_blocks_enabled() && !finished_blocks_) {
    // Duplicate canonical already dispatched this page: sequential
    // execution would hit the first occurrence's insert and emit GET, so
    // do the same at splice time — and do not run the generator again.
    for (PendingBlock& earlier : pending_blocks_) {
      if (earlier.id.Canonical() == id.Canonical()) {
        earlier.has_duplicate = true;
        segments_.push_back(
            Segment{std::move(body_), &earlier, /*emit_get=*/true});
        body_.clear();
        return Status::Ok();
      }
    }
    // Parallel miss path: capture the generator and hand it to the pool;
    // the page keeps a hole that FinishBlocks fills in page order. The
    // generator runs against a throwaway child context whose only job is
    // collecting the fragment buffer and dependency declarations.
    ++stats_.parallel_blocks;
    pending_blocks_.push_back(
        PendingBlock{id, ttl_micros, generate, /*output=*/{}, /*deps=*/{}});
    PendingBlock* pending = &pending_blocks_.back();
    segments_.push_back(Segment{std::move(body_), pending});
    body_.clear();
    {
      std::lock_guard<std::mutex> lock(block_mu_);
      ++outstanding_blocks_;
    }
    block_pool_->Submit([this, pending] {
      {
        ScriptContext child(request_, repository_, monitor_, metrics_);
        child.in_block_ = true;
        MicroTime start = timed() ? metrics_->clock->NowMicros() : 0;
        Status injected = chaos::InjectStatus(
            DYNAPROX_FAULT_POINT("bem.block.generate"));
        pending->status =
            injected.ok() ? pending->generate(child) : injected;
        if (timed()) {
          ObserveStage(metrics_->block_execution,
                       metrics_->clock->NowMicros() - start);
        }
        pending->output = std::move(child.block_buffer_);
        pending->deps = std::move(child.pending_deps_);
      }
      std::lock_guard<std::mutex> lock(block_mu_);
      --outstanding_blocks_;
      block_cv_.notify_all();
    });
    return Status::Ok();
  }

  // Sequential miss path: run the code block first; only a successful
  // generation is registered in the directory.
  in_block_ = true;
  block_buffer_.clear();
  pending_deps_.clear();
  MicroTime generate_start = instrumented ? clock->NowMicros() : 0;
  Status generated =
      chaos::InjectStatus(DYNAPROX_FAULT_POINT("bem.block.generate"));
  if (generated.ok()) generated = generate(*this);
  if (instrumented) {
    ObserveStage(metrics_->block_execution,
                 clock->NowMicros() - generate_start);
  }
  in_block_ = false;
  if (!generated.ok()) {
    block_buffer_.clear();
    pending_deps_.clear();
    return generated;
  }

  RegisterAndEmit(id, ttl_micros, std::move(block_buffer_),
                  std::move(pending_deps_), body_);
  block_buffer_.clear();
  pending_deps_.clear();
  return Status::Ok();
}

void ScriptContext::WaitForBlocks() {
  std::unique_lock<std::mutex> lock(block_mu_);
  block_cv_.wait(lock, [this] { return outstanding_blocks_ == 0; });
}

Status ScriptContext::FinishBlocks() {
  if (finished_blocks_) return finish_status_;
  finished_blocks_ = true;
  if (segments_.empty()) return finish_status_;
  WaitForBlocks();

  // Splice in page order: text, then the block's fragment. Inserts happen
  // here — in page order — so dpcKey assignment matches sequential
  // execution exactly (critical for refresh-pinned key reuse).
  std::string assembled;
  for (Segment& segment : segments_) {
    assembled.append(segment.text);
    PendingBlock& pending = *segment.block;
    if (segment.emit_get) {
      // Duplicate occurrence: the first occurrence (earlier in page
      // order) has already inserted, so this lookup hits the same key a
      // sequential render would have.
      if (!pending.status.ok()) continue;
      bem::LookupResult lookup = monitor_->LookupFragment(pending.id);
      if (lookup.hit()) {
        ++stats_.hits;
        used_tagging_ = true;
        bem::TagCodec::AppendGet(lookup.key, assembled);
      } else {
        // First occurrence degraded to uncached (directory full): emit
        // the preserved copy inline rather than a dangling GET.
        ++stats_.uncacheable;
        bem::TagCodec::AppendLiteral(pending.output, assembled);
      }
      continue;
    }
    if (!pending.status.ok()) {
      if (finish_status_.ok()) finish_status_ = pending.status;
      continue;
    }
    RegisterAndEmit(pending.id, pending.ttl_micros,
                    pending.has_duplicate ? std::string(pending.output)
                                          : std::move(pending.output),
                    std::move(pending.deps), assembled);
  }
  assembled.append(body_);
  body_ = std::move(assembled);
  segments_.clear();
  pending_blocks_.clear();
  return finish_status_;
}

void ScriptContext::DeclareDependency(const std::string& table,
                                      const std::string& row_key) {
  if (!in_block_ || monitor_ == nullptr) return;
  pending_deps_.emplace_back(table, row_key);
}

void ScriptContext::SetStatus(int code) { status_code_ = code; }

void ScriptContext::SetHeader(std::string name, std::string value) {
  headers_.Set(std::move(name), std::move(value));
}

http::Response ScriptContext::TakeResponse(
    const std::string& template_header_name) {
  // Belt and braces: the origin calls FinishBlocks explicitly for the
  // status; anyone else at least gets a fully assembled body.
  FinishBlocks();
  http::Response response;
  response.status_code = status_code_;
  response.reason = std::string(http::CanonicalReason(status_code_));
  response.headers = std::move(headers_);
  if (!response.headers.Has("Content-Type")) {
    response.headers.Add("Content-Type", "text/html");
  }
  if (used_tagging_) {
    response.headers.Set(template_header_name, "1");
  }
  response.body = std::move(body_);
  return response;
}

}  // namespace dynaprox::appserver
