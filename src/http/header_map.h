#ifndef DYNAPROX_HTTP_HEADER_MAP_H_
#define DYNAPROX_HTTP_HEADER_MAP_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dynaprox::http {

// Ordered multimap of HTTP header fields. Lookup is case-insensitive per
// RFC 7230; insertion order is preserved for serialization.
class HeaderMap {
 public:
  // Appends a field (duplicates allowed, e.g. Set-Cookie).
  void Add(std::string name, std::string value);

  // Replaces all fields named `name` with a single field.
  void Set(std::string name, std::string value);

  // Returns the first value for `name`, if present.
  std::optional<std::string_view> Get(std::string_view name) const;

  // Returns all values for `name` in insertion order.
  std::vector<std::string_view> GetAll(std::string_view name) const;

  bool Has(std::string_view name) const { return Get(name).has_value(); }

  // Removes all fields named `name`; returns the number removed.
  size_t Remove(std::string_view name);

  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  const std::vector<std::pair<std::string, std::string>>& fields() const {
    return fields_;
  }

  // Bytes this map occupies on the wire ("Name: value\r\n" per field).
  size_t SerializedSize() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace dynaprox::http

#endif  // DYNAPROX_HTTP_HEADER_MAP_H_
