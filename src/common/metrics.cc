#include "common/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace dynaprox::metrics {
namespace {

// %g keeps bucket bounds like 0.0025 readable and round-trippable for
// the layouts used here; sums get more digits so accumulated time isn't
// visibly truncated.
std::string FormatBound(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

std::string FormatSample(double value) {
  if (value == static_cast<int64_t>(value) &&
      std::abs(value) < 1e15) {  // Exact integer: render without exponent.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

LatencyHistogram::LatencyHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void LatencyHistogram::Observe(double value) {
  // First bound >= value: `le` is an inclusive upper bound.
  size_t index = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(buckets_.size());
  for (const std::atomic<uint64_t>& bucket : buckets_) {
    snap.counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double LatencyHistogram::Snapshot::mean() const {
  return count == 0 ? 0 : sum / static_cast<double>(count);
}

double LatencyHistogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    uint64_t in_bucket = counts[i];
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds.size()) {
      // +Inf bucket: no upper bound to interpolate toward.
      return bounds.empty() ? 0 : bounds.back();
    }
    double lower = i == 0 ? 0 : bounds[i - 1];
    double upper = bounds[i];
    double position = in_bucket == 0
                          ? 1.0
                          : static_cast<double>(rank - cumulative) /
                                static_cast<double>(in_bucket);
    return lower + (upper - lower) * position;
  }
  return bounds.empty() ? 0 : bounds.back();
}

const std::vector<double>& LatencyHistogram::DefaultLatencySecondsBounds() {
  static const std::vector<double> kBounds = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
      0.05,   0.1,     0.25,   0.5,  1.0,    2.5,   5.0,  10.0};
  return kBounds;
}

Registry::Entry* Registry::Find(const std::string& name) {
  for (std::unique_ptr<Entry>& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = Find(name)) return existing->counter.get();
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kCounter;
  entry->name = name;
  entry->help = help;
  entry->counter = std::make_unique<Counter>();
  Counter* handle = entry->counter.get();
  entries_.push_back(std::move(entry));
  return handle;
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = Find(name)) return existing->gauge.get();
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kGauge;
  entry->name = name;
  entry->help = help;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* handle = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return handle;
}

LatencyHistogram* Registry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = Find(name)) return existing->histogram.get();
  if (bounds.empty()) bounds = LatencyHistogram::DefaultLatencySecondsBounds();
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kHistogram;
  entry->name = name;
  entry->help = help;
  entry->histogram = std::make_unique<LatencyHistogram>(std::move(bounds));
  LatencyHistogram* handle = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return handle;
}

void Registry::RegisterCallbackCounter(const std::string& name,
                                       const std::string& help,
                                       std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Find(name) != nullptr) return;
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kCallbackCounter;
  entry->name = name;
  entry->help = help;
  entry->callback_counter = std::move(fn);
  entries_.push_back(std::move(entry));
}

void Registry::RegisterCallbackGauge(const std::string& name,
                                     const std::string& help,
                                     std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Find(name) != nullptr) return;
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kCallbackGauge;
  entry->name = name;
  entry->help = help;
  entry->callback_gauge = std::move(fn);
  entries_.push_back(std::move(entry));
}

void Registry::RegisterCallbackGaugeVec(const std::string& name,
                                        const std::string& help,
                                        const std::string& label_key,
                                        size_t series_count,
                                        std::function<double(size_t)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Find(name) != nullptr) return;
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kCallbackGaugeVec;
  entry->name = name;
  entry->help = help;
  entry->label_key = label_key;
  entry->series_count = series_count;
  entry->callback_gauge_vec = std::move(fn);
  entries_.push_back(std::move(entry));
}

void Registry::RegisterCallbackCounterVec(
    const std::string& name, const std::string& help,
    const std::string& label_key,
    std::function<std::vector<std::pair<std::string, uint64_t>>()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Find(name) != nullptr) return;
  auto entry = std::make_unique<Entry>();
  entry->kind = Kind::kCallbackCounterVec;
  entry->name = name;
  entry->help = help;
  entry->label_key = label_key;
  entry->callback_counter_vec = std::move(fn);
  entries_.push_back(std::move(entry));
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::unique_ptr<Entry>& entry : entries_) {
    out += "# HELP " + entry->name + " " + entry->help + "\n";
    switch (entry->kind) {
      case Kind::kCounter:
      case Kind::kCallbackCounter: {
        uint64_t value = entry->kind == Kind::kCounter
                             ? entry->counter->value()
                             : entry->callback_counter();
        out += "# TYPE " + entry->name + " counter\n";
        out += entry->name + " " + std::to_string(value) + "\n";
        break;
      }
      case Kind::kGauge: {
        out += "# TYPE " + entry->name + " gauge\n";
        out += entry->name + " " + std::to_string(entry->gauge->value()) +
               "\n";
        break;
      }
      case Kind::kCallbackGauge: {
        out += "# TYPE " + entry->name + " gauge\n";
        out += entry->name + " " + FormatSample(entry->callback_gauge()) +
               "\n";
        break;
      }
      case Kind::kCallbackGaugeVec: {
        out += "# TYPE " + entry->name + " gauge\n";
        for (size_t i = 0; i < entry->series_count; ++i) {
          out += entry->name + "{" + entry->label_key + "=\"" +
                 std::to_string(i) + "\"} " +
                 FormatSample(entry->callback_gauge_vec(i)) + "\n";
        }
        break;
      }
      case Kind::kCallbackCounterVec: {
        out += "# TYPE " + entry->name + " counter\n";
        for (const auto& [label, value] : entry->callback_counter_vec()) {
          out += entry->name + "{" + entry->label_key + "=\"" + label +
                 "\"} " + std::to_string(value) + "\n";
        }
        break;
      }
      case Kind::kHistogram: {
        out += "# TYPE " + entry->name + " histogram\n";
        LatencyHistogram::Snapshot snap = entry->histogram->snapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < snap.bounds.size(); ++i) {
          cumulative += snap.counts[i];
          out += entry->name + "_bucket{le=\"" +
                 FormatBound(snap.bounds[i]) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += snap.counts.back();
        out += entry->name + "_bucket{le=\"+Inf\"} " +
               std::to_string(cumulative) + "\n";
        out += entry->name + "_sum " + FormatSample(snap.sum) + "\n";
        out += entry->name + "_count " + std::to_string(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace dynaprox::metrics
