// Multi-threaded hammer tests for the striped BEM structures. These are
// the tier-1 TSan targets for the block-execution work: they drive
// CacheDirectory, FreeList, and BackEndMonitor from many threads at once
// and then check the structural invariants that the striped locking must
// preserve — every valid entry owns a distinct key, and keys are never
// lost or duplicated across the free list and the directory.
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bem/cache_directory.h"
#include "bem/free_list.h"
#include "bem/monitor.h"
#include "common/clock.h"
#include "storage/table.h"

namespace dynaprox::bem {
namespace {

FragmentId Frag(const std::string& name) { return FragmentId(name); }

// Keys held by valid entries must be distinct, and together with the free
// list they must account for the whole key space.
void CheckKeyInvariants(const CacheDirectory& dir, DpcKey capacity) {
  std::vector<CacheDirectory::EntryView> entries =
      dir.SnapshotEntries(capacity);
  std::set<DpcKey> held;
  for (const auto& entry : entries) {
    if (!entry.is_valid) continue;
    EXPECT_LT(entry.key, capacity);
    EXPECT_TRUE(held.insert(entry.key).second)
        << "dpcKey " << entry.key << " assigned to two valid fragments";
  }
  EXPECT_EQ(held.size() + dir.free_key_count(), capacity);
}

TEST(BemConcurrencyTest, DirectoryHammerKeepsKeysConsistent) {
  SimClock clock;
  CacheDirectory dir(32, &clock, *MakeReplacementPolicy("lru"));
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dir, t] {
      for (int i = 0; i < kOps; ++i) {
        // 48 canonicals over capacity 32: steady eviction pressure.
        FragmentId id = Frag("f" + std::to_string((t * 7 + i) % 48));
        switch (i % 4) {
          case 0:
          case 1:
            (void)dir.Lookup(id);
            break;
          case 2:
            (void)dir.Insert(id, 0);
            break;
          default:
            (void)dir.Invalidate(id);
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  CheckKeyInvariants(dir, 32);
  // Cases 0 and 1 of 4 are lookups; each lands in exactly one bucket.
  DirectoryStats stats = dir.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOps / 2);
}

TEST(BemConcurrencyTest, ConcurrentInsertsOfSameCanonicalKeepOneValidEntry) {
  SimClock clock;
  CacheDirectory dir(16, &clock, *MakeReplacementPolicy("lru"));
  constexpr int kThreads = 8;
  // All threads hammer the same four canonicals: the insert-race path
  // (phase D re-check) must leave at most one valid entry per canonical
  // and leak no keys.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dir] {
      for (int i = 0; i < 1500; ++i) {
        (void)dir.Insert(Frag("shared" + std::to_string(i % 4)), 0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  CheckKeyInvariants(dir, 16);
  std::set<std::string> valid_canonicals;
  for (const auto& entry : dir.SnapshotEntries(16)) {
    if (!entry.is_valid) continue;
    EXPECT_TRUE(valid_canonicals.insert(entry.fragment_id).second)
        << "two valid entries for " << entry.fragment_id;
  }
  EXPECT_LE(valid_canonicals.size(), 4u);
}

TEST(BemConcurrencyTest, FreeListNeverHandsOutAKeyTwice) {
  constexpr DpcKey kCapacity = 64;
  FreeList list(kCapacity);
  std::vector<std::atomic<int>> owners(kCapacity);
  for (auto& o : owners) o.store(-1);
  std::atomic<bool> violation{false};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 3000; ++i) {
        Result<DpcKey> key = list.Allocate();
        if (!key.ok()) continue;  // Transiently empty under contention.
        int expected = -1;
        if (!owners[*key].compare_exchange_strong(expected, t)) {
          violation.store(true);  // Someone else already holds this key.
        }
        owners[*key].store(-1);
        Status released =
            (i % 2 == 0) ? list.Release(*key) : list.ReleaseFront(*key);
        EXPECT_TRUE(released.ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(list.free_count(), kCapacity);
}

TEST(BemConcurrencyTest, MonitorHammerWithDataSourceInvalidations) {
  SimClock clock;
  BemOptions options;
  options.capacity = 24;
  options.clock = &clock;
  auto monitor = *BackEndMonitor::Create(options);
  storage::ContentRepository repository;
  monitor->AttachRepository(&repository);
  storage::Table* table = repository.GetOrCreateTable("t");

  std::atomic<bool> stop{false};
  // Mutator thread: repository updates ride the update bus into
  // OnDataSourceUpdate, invalidating dependent fragments concurrently
  // with the lookup/insert threads.
  std::thread mutator([&] {
    int i = 0;
    while (!stop.load()) {
      storage::Row row;
      row["v"] = std::to_string(i);
      table->Upsert("row" + std::to_string(i % 8), std::move(row));
      ++i;
    }
  });

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        FragmentId id = Frag("m" + std::to_string((t + i) % 32));
        LookupResult lookup = monitor->LookupFragment(id);
        if (!lookup.hit()) {
          Result<DpcKey> key = monitor->InsertFragment(id, 0);
          if (key.ok()) {
            monitor->AddDependency(id, "t", "row" + std::to_string(i % 8));
          }
        }
        if (i % 97 == 0) {
          monitor->SweepExpired();
        }
        if (i % 501 == 0) {
          monitor->InvalidateAll();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true);
  mutator.join();
  monitor->DetachRepository();
  CheckKeyInvariants(monitor->directory(), 24);
}

}  // namespace
}  // namespace dynaprox::bem
