// dynaprox_origin: runs an origin site (application server + BEM) on a TCP
// port, serving the synthetic Table 2 site under /page?id=N. Pair with
// dynaprox_proxy and dynaprox_loadgen for a three-process deployment of
// the paper's Figure 4 testbed.
//
//   ./dynaprox_origin --port=8081 --pages=10 --fragments=4
//       --fragment-size=1000 --hit-ratio=0.8 [--no-bem] [--capacity=4096]
//       [--sweep-interval-ms=1000] [--server=threads|epoll] [--workers=4]
//       [--block-workers=0] [--block-queue=256]
//       [--metrics=true] [--access-log=PATH]
//       [--max-connections=0] [--max-inflight=0]
//       [--header-timeout=0] [--idle-timeout=0] [--write-stall-timeout=0]
//       [--max-header-bytes=0] [--max-body-bytes=0] [--drain-timeout=0]
//
// The ingress limits (docs/failure-modes.md) all default to 0 = off and
// apply to whichever --server is selected: --max-connections caps
// concurrent connections, --max-inflight sheds excess concurrent
// requests with 503 + Retry-After, the three timeouts (milliseconds)
// disconnect slowloris/idle/stalled clients, the byte caps answer
// 431/413, and --drain-timeout (milliseconds) drains in-flight requests
// before shutdown.
//
// --block-workers > 0 runs independent cacheable-block miss generators of
// one page concurrently on a shared thread pool (BEM mode only; the
// assembled template is byte-identical to sequential execution).
// --block-queue bounds the pool's task queue; overflow degrades to
// inline (caller-runs) execution. See docs/threading-model.md.
//
// A JSON status document is served at /_dynaprox/status and (unless
// --metrics=false) the Prometheus text exposition at /_dynaprox/metrics.
// --access-log=PATH appends one JSON line per request ("-" = stderr);
// lines carry the X-DPC-Request-Id the proxy forwarded, so they join the
// DPC's lines (docs/observability.md).
// Runs until EOF on stdin (or forever when stdin is closed).

#include <cstdio>
#include <unistd.h>

#include "analytical/model.h"
#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "bem/sweeper.h"
#include "common/access_log.h"
#include "common/flags.h"
#include "net/epoll_server.h"
#include "net/tcp.h"
#include "storage/table.h"
#include "workload/synthetic_site.h"

using namespace dynaprox;

int main(int argc, char** argv) {
  Result<Flags> flags = Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }

  analytical::ModelParams params =
      analytical::ModelParams::Table2Baseline();
  Result<int64_t> port = flags->GetInt("port", 8081);
  Result<int64_t> pages = flags->GetInt("pages", params.num_pages);
  Result<int64_t> fragments =
      flags->GetInt("fragments", params.fragments_per_page);
  Result<double> fragment_size =
      flags->GetDouble("fragment-size", params.fragment_size);
  Result<double> hit_ratio = flags->GetDouble("hit-ratio", params.hit_ratio);
  Result<double> cacheability =
      flags->GetDouble("cacheability", params.cacheability);
  Result<int64_t> capacity = flags->GetInt("capacity", 4096);
  Result<int64_t> sweep_ms = flags->GetInt("sweep-interval-ms", 0);
  Result<int64_t> seed = flags->GetInt("seed", 42);
  Result<int64_t> max_connections = flags->GetInt("max-connections", 0);
  Result<int64_t> max_inflight = flags->GetInt("max-inflight", 0);
  Result<int64_t> header_timeout_ms = flags->GetInt("header-timeout", 0);
  Result<int64_t> idle_timeout_ms = flags->GetInt("idle-timeout", 0);
  Result<int64_t> write_stall_ms = flags->GetInt("write-stall-timeout", 0);
  Result<int64_t> max_header_bytes = flags->GetInt("max-header-bytes", 0);
  Result<int64_t> max_body_bytes = flags->GetInt("max-body-bytes", 0);
  Result<int64_t> drain_timeout_ms = flags->GetInt("drain-timeout", 0);
  Result<int64_t> block_workers = flags->GetInt("block-workers", 0);
  Result<int64_t> block_queue = flags->GetInt("block-queue", 256);
  for (const auto* r : {&port, &pages, &fragments, &capacity, &sweep_ms,
                        &seed, &max_connections, &max_inflight,
                        &header_timeout_ms, &idle_timeout_ms,
                        &write_stall_ms, &max_header_bytes, &max_body_bytes,
                        &drain_timeout_ms, &block_workers, &block_queue}) {
    if (!r->ok()) {
      std::fprintf(stderr, "%s\n", r->status().ToString().c_str());
      return 2;
    }
  }
  for (const auto* r : {&fragment_size, &hit_ratio, &cacheability}) {
    if (!r->ok()) {
      std::fprintf(stderr, "%s\n", r->status().ToString().c_str());
      return 2;
    }
  }
  params.num_pages = static_cast<int>(*pages);
  params.fragments_per_page = static_cast<int>(*fragments);
  params.fragment_size = *fragment_size;
  params.hit_ratio = *hit_ratio;
  params.cacheability = *cacheability;

  storage::ContentRepository repository;
  appserver::ScriptRegistry registry;
  workload::SyntheticSite site(params, static_cast<uint64_t>(*seed),
                               &repository, &registry);

  std::unique_ptr<bem::BackEndMonitor> monitor;
  std::unique_ptr<bem::PeriodicSweeper> sweeper;
  if (!flags->GetBool("no-bem")) {
    bem::BemOptions bem_options;
    bem_options.capacity = static_cast<bem::DpcKey>(*capacity);
    Result<std::unique_ptr<bem::BackEndMonitor>> created =
        bem::BackEndMonitor::Create(bem_options);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    monitor = std::move(*created);
    monitor->AttachRepository(&repository);
    if (*sweep_ms > 0) {
      sweeper = std::make_unique<bem::PeriodicSweeper>(
          monitor.get(), *sweep_ms * kMicrosPerMilli);
      sweeper->Start();
    }
  }

  std::unique_ptr<AccessLogger> access_log;
  if (std::string log_path = flags->GetString("access-log", "");
      !log_path.empty()) {
    Result<std::unique_ptr<AccessLogger>> opened =
        AccessLogger::Open(log_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 2;
    }
    access_log = std::move(*opened);
  }

  net::IngressCounters ingress;
  net::ServerLimits limits;
  limits.max_connections = static_cast<int>(*max_connections);
  limits.max_inflight = static_cast<int>(*max_inflight);
  limits.max_header_bytes = static_cast<size_t>(*max_header_bytes);
  limits.max_body_bytes = static_cast<size_t>(*max_body_bytes);
  limits.header_timeout_micros = *header_timeout_ms * kMicrosPerMilli;
  limits.idle_timeout_micros = *idle_timeout_ms * kMicrosPerMilli;
  limits.write_stall_micros = *write_stall_ms * kMicrosPerMilli;
  limits.counters = &ingress;

  appserver::OriginOptions origin_options;
  origin_options.pad_headers_to_bytes =
      static_cast<size_t>(params.header_size);
  origin_options.enable_status = true;
  origin_options.enable_metrics = flags->GetBool("metrics", true);
  origin_options.access_log = access_log.get();
  origin_options.ingress = &ingress;
  origin_options.block_workers = static_cast<int>(*block_workers);
  origin_options.block_queue_capacity = static_cast<size_t>(*block_queue);
  appserver::OriginServer origin(&registry, &repository, monitor.get(),
                                 origin_options);

  std::string server_kind = flags->GetString("server", "threads");
  Result<int64_t> workers = flags->GetInt("workers", 2);
  std::unique_ptr<net::TcpServer> thread_server;
  std::unique_ptr<net::EpollServer> epoll_server;
  uint16_t bound_port = 0;
  if (server_kind == "epoll") {
    epoll_server = std::make_unique<net::EpollServer>(
        origin.AsHandler(), static_cast<uint16_t>(*port),
        static_cast<int>(workers.value_or(2)), limits);
    Status started = epoll_server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    bound_port = epoll_server->port();
  } else if (server_kind == "threads") {
    thread_server = std::make_unique<net::TcpServer>(
        origin.AsHandler(), static_cast<uint16_t>(*port), limits);
    Status started = thread_server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    bound_port = thread_server->port();
  } else {
    std::fprintf(stderr, "unknown --server '%s' (threads|epoll)\n",
                 server_kind.c_str());
    return 2;
  }
  std::printf("origin listening on 127.0.0.1:%u (%s, %s server, %d pages "
              "x %d fragments of %.0fB)\n",
              bound_port, monitor ? "BEM enabled" : "no-cache baseline",
              server_kind.c_str(), params.num_pages,
              params.fragments_per_page, params.fragment_size);
  std::fflush(stdout);

  // Serve until stdin closes (Ctrl-D or pipe end).
  char buf[256];
  while (::read(STDIN_FILENO, buf, sizeof(buf)) > 0) {
  }
  const MicroTime drain_micros = *drain_timeout_ms * kMicrosPerMilli;
  if (thread_server != nullptr) thread_server->Stop(drain_micros);
  if (epoll_server != nullptr) epoll_server->Stop(drain_micros);
  appserver::OriginStats stats = origin.stats();
  std::printf("served %llu requests (%llu hits, %llu misses, %llu refresh "
              "invalidations)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.fragment_hits),
              static_cast<unsigned long long>(stats.fragment_misses),
              static_cast<unsigned long long>(stats.refresh_invalidations));
  std::printf(
      "ingress: %llu accepted, %llu conn-limit rejections, %llu shed "
      "503s, %llu header timeouts, %llu idle timeouts, %llu oversize "
      "(431+413), %llu drained\n",
      static_cast<unsigned long long>(ingress.accepted_total.load()),
      static_cast<unsigned long long>(
          ingress.connection_limit_rejections.load()),
      static_cast<unsigned long long>(ingress.shed_503s.load()),
      static_cast<unsigned long long>(ingress.header_timeouts.load()),
      static_cast<unsigned long long>(ingress.idle_timeouts.load()),
      static_cast<unsigned long long>(ingress.oversize_headers.load() +
                                      ingress.oversize_bodies.load()),
      static_cast<unsigned long long>(ingress.drained_connections.load()));
  return 0;
}
