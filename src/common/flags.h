#ifndef DYNAPROX_COMMON_FLAGS_H_
#define DYNAPROX_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace dynaprox {

// Minimal command-line parser for the tools/ binaries. Accepts
// "--name=value", "--name value", and bare "--name" (boolean true);
// everything else is a positional argument. "--" ends flag parsing.
class Flags {
 public:
  // Parses argv (excluding argv[0]); fails on malformed input like
  // "--=x" or a value-less flag used with GetInt.
  static Result<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  // Typed getters; absent flags yield the fallback. GetInt/GetDouble fail
  // (rather than silently falling back) when the flag is present but
  // unparseable, so tools can report bad input.
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;
  Result<double> GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Names seen, for unknown-flag checks.
  std::vector<std::string> FlagNames() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dynaprox

#endif  // DYNAPROX_COMMON_FLAGS_H_
