file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_exp_savings_vs_cacheability.dir/fig6_exp_savings_vs_cacheability.cc.o"
  "CMakeFiles/bench_fig6_exp_savings_vs_cacheability.dir/fig6_exp_savings_vs_cacheability.cc.o.d"
  "bench_fig6_exp_savings_vs_cacheability"
  "bench_fig6_exp_savings_vs_cacheability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_exp_savings_vs_cacheability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
