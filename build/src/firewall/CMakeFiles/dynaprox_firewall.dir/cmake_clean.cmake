file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_firewall.dir/firewall.cc.o"
  "CMakeFiles/dynaprox_firewall.dir/firewall.cc.o.d"
  "libdynaprox_firewall.a"
  "libdynaprox_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
