#include "bem/monitor.h"

#include "common/logging.h"

namespace dynaprox::bem {

Result<std::unique_ptr<BackEndMonitor>> BackEndMonitor::Create(
    BemOptions options) {
  if (options.capacity == 0) {
    return Status::InvalidArgument("BEM capacity must be > 0");
  }
  std::unique_ptr<ReplacementPolicy> policy;
  DYNAPROX_ASSIGN_OR_RETURN(policy,
                            MakeReplacementPolicy(options.replacement_policy));
  const Clock* clock =
      options.clock != nullptr ? options.clock : SystemClock::Default();
  return std::unique_ptr<BackEndMonitor>(
      new BackEndMonitor(options.capacity, clock, std::move(policy),
                         options.default_ttl_micros));
}

BackEndMonitor::BackEndMonitor(DpcKey capacity, const Clock* clock,
                               std::unique_ptr<ReplacementPolicy> policy,
                               MicroTime default_ttl_micros)
    : directory_(capacity, clock, std::move(policy)),
      default_ttl_micros_(default_ttl_micros) {}

BackEndMonitor::~BackEndMonitor() { DetachRepository(); }

LookupResult BackEndMonitor::LookupFragment(const FragmentId& id) {
  LookupResult result = directory_.Lookup(id);
  if (FragmentEventObserver* obs = observer(); obs != nullptr) {
    obs->OnLookup(id.Canonical(), result.hit());
  }
  return result;
}

Result<DpcKey> BackEndMonitor::InsertFragment(const FragmentId& id,
                                              MicroTime ttl_micros) {
  if (ttl_micros < 0) ttl_micros = default_ttl_micros_;
  // A fresh insert supersedes any dependencies registered for the previous
  // incarnation of this fragment; the generating code block re-declares
  // them as it runs.
  registry_.RemoveFragment(id.Canonical());
  Result<DpcKey> key = directory_.Insert(id, ttl_micros);
  if (key.ok()) {
    if (FragmentEventObserver* obs = observer(); obs != nullptr) {
      obs->OnInsert(id.Canonical(), *key);
    }
  }
  return key;
}

void BackEndMonitor::AddDependency(const FragmentId& id,
                                   const std::string& table,
                                   const std::string& row_key) {
  registry_.Add(id.Canonical(), table, row_key);
}

Status BackEndMonitor::Invalidate(const FragmentId& id) {
  registry_.RemoveFragment(id.Canonical());
  Status status = directory_.Invalidate(id);
  if (status.ok()) {
    if (FragmentEventObserver* obs = observer(); obs != nullptr) {
      obs->OnInvalidate(id.Canonical());
    }
  }
  return status;
}

Status BackEndMonitor::InvalidateKey(DpcKey key) {
  Result<std::string> owner = directory_.InvalidateKey(key);
  if (!owner.ok()) return owner.status();
  registry_.RemoveFragment(*owner);
  if (FragmentEventObserver* obs = observer(); obs != nullptr) {
    obs->OnInvalidate(*owner);
  }
  return Status::Ok();
}

Result<std::string> BackEndMonitor::RefreshKey(DpcKey key) {
  Result<std::string> owner = directory_.InvalidateKey(key, /*pin_key=*/true);
  if (!owner.ok()) return owner.status();
  registry_.RemoveFragment(*owner);
  return owner;
}

size_t BackEndMonitor::InvalidateAll() {
  size_t count = directory_.InvalidateAll();
  // Dependencies die with their fragments.
  registry_.Clear();
  return count;
}

size_t BackEndMonitor::SweepExpired() { return directory_.SweepExpired(); }

DirectoryStats BackEndMonitor::stats() const { return directory_.stats(); }

std::vector<CacheDirectory::EntryView> BackEndMonitor::SnapshotEntries(
    size_t limit) const {
  return directory_.SnapshotEntries(limit);
}

BackEndMonitor::ConcurrencyStats BackEndMonitor::concurrency_stats() const {
  CacheDirectory::ConcurrencyStats dir = directory_.concurrency_stats();
  ConcurrencyStats stats;
  stats.stripe_contentions = dir.stripe_contentions;
  stats.policy_contentions = dir.policy_contentions;
  stats.free_list_contentions = dir.free_list_contentions;
  stats.registry_contentions = registry_.contentions();
  stats.insert_races = dir.insert_races;
  return stats;
}

void BackEndMonitor::AttachRepository(storage::ContentRepository* repository) {
  DetachRepository();
  std::lock_guard<std::mutex> lock(attach_mu_);
  repository_ = repository;
  subscription_ = repository_->bus().Subscribe(
      [this](const storage::UpdateEvent& event) { OnDataSourceUpdate(event); });
}

void BackEndMonitor::DetachRepository() {
  std::lock_guard<std::mutex> lock(attach_mu_);
  if (repository_ == nullptr) return;
  repository_->bus().Unsubscribe(subscription_);
  repository_ = nullptr;
  subscription_ = 0;
}

size_t BackEndMonitor::OnDataSourceUpdate(const storage::UpdateEvent& event) {
  size_t count = 0;
  for (const std::string& canonical : registry_.Affected(event)) {
    Status status = directory_.InvalidateCanonical(canonical);
    registry_.RemoveFragment(canonical);
    if (status.ok()) {
      ++count;
      if (FragmentEventObserver* obs = observer(); obs != nullptr) {
        obs->OnInvalidate(canonical);
      }
      DYNAPROX_LOG(kDebug, "bem")
          << "data-source invalidation: " << canonical << " (table "
          << event.table << ")";
    }
  }
  return count;
}

}  // namespace dynaprox::bem
