#ifndef DYNAPROX_APPSERVER_ORIGIN_SERVER_H_
#define DYNAPROX_APPSERVER_ORIGIN_SERVER_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "common/result.h"
#include "http/message.h"
#include "net/transport.h"
#include "storage/table.h"

namespace dynaprox::appserver {

struct OriginOptions {
  // Pads response headers (with an "X-Pad" field) up to this serialized
  // head size in bytes; 0 disables. Used by the sim to realize the paper's
  // header-size parameter f (Table 2: f = 500).
  size_t pad_headers_to_bytes = 0;
  // Serve a JSON status document (origin + BEM counters) at status_path.
  bool enable_status = false;
  std::string status_path = "/_dynaprox/status";
};

struct OriginStats {
  uint64_t requests = 0;
  uint64_t not_found = 0;
  uint64_t script_errors = 0;
  uint64_t refresh_invalidations = 0;  // DPC cold-cache recovery keys.
  uint64_t fragment_hits = 0;
  uint64_t fragment_misses = 0;
  uint64_t fragment_uncacheable = 0;
  uint64_t body_bytes_sent = 0;
};

// The origin web/application server: dispatches requests to dynamic
// scripts and, when a BEM is attached, serves templates for the DPC to
// assemble. Without a BEM it serves complete pages — the no-cache baseline.
//
// Thread-safe given its collaborators' guarantees: the registry must not
// be mutated while serving; repository and monitor are internally
// synchronized; scripts must only touch request-local state or
// thread-safe services.
class OriginServer {
 public:
  // `registry` and `repository` must outlive the server; `monitor` may be
  // null (baseline mode).
  OriginServer(const ScriptRegistry* registry,
               storage::ContentRepository* repository,
               bem::BackEndMonitor* monitor, OriginOptions options = {});

  http::Response Handle(const http::Request& request);

  // Adapter for net::TcpServer / net::DirectTransport.
  net::Handler AsHandler();

  // Snapshot of the serving counters.
  OriginStats stats() const;
  bool caching_enabled() const { return monitor_ != nullptr; }

 private:
  void ApplyHeaderPadding(http::Response& response) const;
  void HandleRefreshHeader(const http::Request& request);
  http::Response RenderStatus() const;

  const ScriptRegistry* registry_;
  storage::ContentRepository* repository_;
  bem::BackEndMonitor* monitor_;
  OriginOptions options_;
  mutable std::mutex stats_mu_;
  OriginStats stats_;
};

}  // namespace dynaprox::appserver

#endif  // DYNAPROX_APPSERVER_ORIGIN_SERVER_H_
