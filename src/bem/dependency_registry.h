#ifndef DYNAPROX_BEM_DEPENDENCY_REGISTRY_H_
#define DYNAPROX_BEM_DEPENDENCY_REGISTRY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "storage/update_bus.h"

namespace dynaprox::bem {

// Tracks which cached fragments depend on which data-source rows, enabling
// the cache invalidation manager's "updates to the underlying data sources"
// trigger (paper 4.3.3). A dependency is (table) or (table, row-key); a
// table-level dependency is invalidated by any mutation of that table.
class DependencyRegistry {
 public:
  // Declares that fragment `canonical` depends on `table` (whole table when
  // `row_key` is empty).
  void Add(const std::string& canonical, const std::string& table,
           const std::string& row_key = "");

  // Drops all dependencies of `canonical` (fragment invalidated/reclaimed).
  void RemoveFragment(const std::string& canonical);

  // Fragments affected by `event`, in deterministic (sorted) order.
  std::vector<std::string> Affected(const storage::UpdateEvent& event) const;

  size_t fragment_count() const { return by_fragment_.size(); }

 private:
  struct Dep {
    std::string table;
    std::string row_key;  // Empty: whole table.
    bool operator<(const Dep& other) const {
      if (table != other.table) return table < other.table;
      return row_key < other.row_key;
    }
  };

  // (table, row_key) -> fragments; row_key "" holds table-level deps.
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      by_source_;
  std::map<std::string, std::set<Dep>> by_fragment_;
};

}  // namespace dynaprox::bem

#endif  // DYNAPROX_BEM_DEPENDENCY_REGISTRY_H_
