#include "appserver/script_registry.h"

#include <gtest/gtest.h>

namespace dynaprox::appserver {
namespace {

ScriptFn Noop() {
  return [](ScriptContext&) { return Status::Ok(); };
}

TEST(ScriptRegistryTest, RegisterAndFind) {
  ScriptRegistry registry;
  ASSERT_TRUE(registry.Register("/a", Noop()).ok());
  EXPECT_TRUE(registry.Find("/a").ok());
  EXPECT_TRUE(registry.Find("/b").status().IsNotFound());
}

TEST(ScriptRegistryTest, DuplicateRegisterFails) {
  ScriptRegistry registry;
  ASSERT_TRUE(registry.Register("/a", Noop()).ok());
  EXPECT_EQ(registry.Register("/a", Noop()).code(),
            StatusCode::kAlreadyExists);
}

TEST(ScriptRegistryTest, RegisterOrReplaceOverwrites) {
  ScriptRegistry registry;
  int which = 0;
  registry.RegisterOrReplace("/a", [&](ScriptContext&) {
    which = 1;
    return Status::Ok();
  });
  registry.RegisterOrReplace("/a", [&](ScriptContext&) {
    which = 2;
    return Status::Ok();
  });
  http::Request request;
  ScriptContext context(request, nullptr, nullptr);
  ASSERT_TRUE((**registry.Find("/a"))(context).ok());
  EXPECT_EQ(which, 2);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ScriptRegistryTest, PathsListsAll) {
  ScriptRegistry registry;
  registry.RegisterOrReplace("/b", Noop());
  registry.RegisterOrReplace("/a", Noop());
  auto paths = registry.Paths();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "/a");  // Sorted (map order).
}

}  // namespace
}  // namespace dynaprox::appserver
