
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bem/cache_directory_test.cc" "tests/CMakeFiles/bem_test.dir/bem/cache_directory_test.cc.o" "gcc" "tests/CMakeFiles/bem_test.dir/bem/cache_directory_test.cc.o.d"
  "/root/repo/tests/bem/dependency_registry_test.cc" "tests/CMakeFiles/bem_test.dir/bem/dependency_registry_test.cc.o" "gcc" "tests/CMakeFiles/bem_test.dir/bem/dependency_registry_test.cc.o.d"
  "/root/repo/tests/bem/directory_model_test.cc" "tests/CMakeFiles/bem_test.dir/bem/directory_model_test.cc.o" "gcc" "tests/CMakeFiles/bem_test.dir/bem/directory_model_test.cc.o.d"
  "/root/repo/tests/bem/free_list_test.cc" "tests/CMakeFiles/bem_test.dir/bem/free_list_test.cc.o" "gcc" "tests/CMakeFiles/bem_test.dir/bem/free_list_test.cc.o.d"
  "/root/repo/tests/bem/monitor_test.cc" "tests/CMakeFiles/bem_test.dir/bem/monitor_test.cc.o" "gcc" "tests/CMakeFiles/bem_test.dir/bem/monitor_test.cc.o.d"
  "/root/repo/tests/bem/replacement_test.cc" "tests/CMakeFiles/bem_test.dir/bem/replacement_test.cc.o" "gcc" "tests/CMakeFiles/bem_test.dir/bem/replacement_test.cc.o.d"
  "/root/repo/tests/bem/sweeper_test.cc" "tests/CMakeFiles/bem_test.dir/bem/sweeper_test.cc.o" "gcc" "tests/CMakeFiles/bem_test.dir/bem/sweeper_test.cc.o.d"
  "/root/repo/tests/bem/tag_codec_test.cc" "tests/CMakeFiles/bem_test.dir/bem/tag_codec_test.cc.o" "gcc" "tests/CMakeFiles/bem_test.dir/bem/tag_codec_test.cc.o.d"
  "/root/repo/tests/bem/types_test.cc" "tests/CMakeFiles/bem_test.dir/bem/types_test.cc.o" "gcc" "tests/CMakeFiles/bem_test.dir/bem/types_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/dynaprox_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/dynaprox_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynaprox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/firewall/CMakeFiles/dynaprox_firewall.dir/DependInfo.cmake"
  "/root/repo/build/src/dpc/CMakeFiles/dynaprox_dpc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dynaprox_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/appserver/CMakeFiles/dynaprox_appserver.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/dynaprox_http.dir/DependInfo.cmake"
  "/root/repo/build/src/bem/CMakeFiles/dynaprox_bem.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynaprox_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/analytical/CMakeFiles/dynaprox_analytical.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynaprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
