#include "bem/replacement.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace dynaprox::bem {
namespace {

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  LruPolicy lru;
  lru.OnInsert("a");
  lru.OnInsert("b");
  lru.OnInsert("c");
  EXPECT_EQ(*lru.PickVictim(), "a");
  lru.OnAccess("a");  // Now "b" is oldest.
  EXPECT_EQ(*lru.PickVictim(), "b");
}

TEST(LruPolicyTest, RemoveDropsEntry) {
  LruPolicy lru;
  lru.OnInsert("a");
  lru.OnInsert("b");
  lru.OnRemove("a");
  EXPECT_EQ(*lru.PickVictim(), "b");
  lru.OnRemove("b");
  EXPECT_FALSE(lru.PickVictim().ok());
}

TEST(LruPolicyTest, RemoveUnknownIsIgnored) {
  LruPolicy lru;
  lru.OnRemove("ghost");
  EXPECT_FALSE(lru.PickVictim().ok());
}

TEST(LruPolicyTest, ReinsertTouches) {
  LruPolicy lru;
  lru.OnInsert("a");
  lru.OnInsert("b");
  lru.OnInsert("a");  // Re-insert moves "a" to the front.
  EXPECT_EQ(*lru.PickVictim(), "b");
}

TEST(FifoPolicyTest, EvictsOldestIgnoringAccesses) {
  FifoPolicy fifo;
  fifo.OnInsert("a");
  fifo.OnInsert("b");
  fifo.OnAccess("a");  // FIFO ignores accesses.
  EXPECT_EQ(*fifo.PickVictim(), "a");
  fifo.OnRemove("a");
  EXPECT_EQ(*fifo.PickVictim(), "b");
}

TEST(FifoPolicyTest, ReinsertKeepsOriginalAge) {
  FifoPolicy fifo;
  fifo.OnInsert("a");
  fifo.OnInsert("b");
  fifo.OnInsert("a");  // Still oldest.
  EXPECT_EQ(*fifo.PickVictim(), "a");
}

TEST(ClockPolicyTest, SecondChanceBeforeEviction) {
  ClockPolicy clock;
  clock.OnInsert("a");
  clock.OnInsert("b");
  // Both referenced: first sweep clears bits, second finds "a".
  EXPECT_EQ(*clock.PickVictim(), "a");
  // "a" was not removed and its bit is now clear; accessing it re-arms it.
  clock.OnAccess("a");
  EXPECT_EQ(*clock.PickVictim(), "b");
}

TEST(ClockPolicyTest, RemoveKeepsRingConsistent) {
  ClockPolicy clock;
  clock.OnInsert("a");
  clock.OnInsert("b");
  clock.OnInsert("c");
  clock.OnRemove("b");
  Result<std::string> victim = clock.PickVictim();
  ASSERT_TRUE(victim.ok());
  EXPECT_NE(*victim, "b");
  clock.OnRemove("a");
  clock.OnRemove("c");
  EXPECT_FALSE(clock.PickVictim().ok());
}

TEST(ClockPolicyTest, EmptyRingFails) {
  ClockPolicy clock;
  EXPECT_EQ(clock.PickVictim().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(MakeReplacementPolicyTest, FactoryByName) {
  for (const char* name : {"lru", "fifo", "clock"}) {
    Result<std::unique_ptr<ReplacementPolicy>> policy =
        MakeReplacementPolicy(name);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ((*policy)->name(), name);
  }
  EXPECT_FALSE(MakeReplacementPolicy("arc").ok());
}

// Property-style sweep: every policy returns a victim that was inserted
// and not removed, for a few interleavings.
class PolicyParamTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicyParamTest, VictimIsAlwaysATrackedEntry) {
  auto policy = *MakeReplacementPolicy(GetParam());
  std::set<std::string> live;
  for (int i = 0; i < 20; ++i) {
    std::string id = "f" + std::to_string(i);
    policy->OnInsert(id);
    live.insert(id);
    if (i % 3 == 0) {
      policy->OnAccess("f" + std::to_string(i / 2));
    }
    if (i % 4 == 0 && !live.empty()) {
      std::string gone = *live.begin();
      policy->OnRemove(gone);
      live.erase(gone);
    }
    if (!live.empty()) {
      Result<std::string> victim = policy->PickVictim();
      ASSERT_TRUE(victim.ok());
      EXPECT_TRUE(live.count(*victim)) << *victim;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyParamTest,
                         ::testing::Values("lru", "fifo", "clock"));

}  // namespace
}  // namespace dynaprox::bem
