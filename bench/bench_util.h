#ifndef DYNAPROX_BENCH_BENCH_UTIL_H_
#define DYNAPROX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "analytical/model.h"
#include "common/metrics.h"

namespace dynaprox::benchutil {

// Millisecond bucket layout for bench latency reporting: geometric from
// 0.25 ms to 10 s, fine enough that bucket-interpolated p50/p99 track the
// exact sample percentiles. Benches report through the same
// metrics::LatencyHistogram the servers export, so a bench number and a
// scraped dynaprox_*_duration_seconds quantile are computed identically
// (docs/observability.md).
inline std::vector<double> LatencyMsBounds() {
  std::vector<double> bounds;
  for (double bound = 0.25; bound < 10000.0; bound *= 1.3) {
    bounds.push_back(bound);
  }
  return bounds;
}

// One table row from a histogram snapshot: count, mean, p50, p99, and the
// interpolated upper estimate p100.
inline void PrintLatencyRow(const char* label, int clients,
                            const metrics::LatencyHistogram::Snapshot& snap) {
  std::printf("%-14s %8d %10llu %10.2f %10.2f %10.2f %10.2f\n", label,
              clients, static_cast<unsigned long long>(snap.count),
              snap.mean(), snap.Percentile(0.5), snap.Percentile(0.99),
              snap.Percentile(1.0));
}

// Prints the standard experiment banner: which figure, and the parameter
// set in Table 2 form.
inline void PrintHeader(const char* figure, const char* title,
                        const analytical::ModelParams& params) {
  std::printf("=== %s: %s ===\n", figure, title);
  std::printf(
      "params: h=%.2f s_e=%.0fB frags/page=%d pages=%d f=%.0fB g=%.0fB "
      "cacheability=%.2f zipf_alpha=%.1f\n",
      params.hit_ratio, params.fragment_size, params.fragments_per_page,
      params.num_pages, params.header_size, params.tag_size,
      params.cacheability, params.zipf_alpha);
}

inline void PrintFooter() { std::printf("\n"); }

}  // namespace dynaprox::benchutil

#endif  // DYNAPROX_BENCH_BENCH_UTIL_H_
