// Ablation: template-scanning cost (google-benchmark). The paper's Result 1
// hinges on scan cost being linear and comparable to firewall scanning
// (z ~= y). This bench measures the DPC's scanner throughput with both
// marker-search strategies, plus KMP signature matching as the firewall
// stand-in, on realistic templates.

#include <string>

#include <benchmark/benchmark.h>

#include "bem/tag_codec.h"
#include "dpc/assembler.h"
#include "dpc/fragment_store.h"
#include "dpc/kmp.h"
#include "dpc/tag_scanner.h"

namespace {

using dynaprox::bem::TagCodec;
using dynaprox::dpc::KmpMatcher;
using dynaprox::dpc::ParseTemplate;
using dynaprox::dpc::ScanStrategy;

// Builds a template with `fragments` GET tags separated by literal runs of
// `literal_bytes` bytes (a "hot" steady-state template).
std::string MakeGetTemplate(int fragments, int literal_bytes) {
  std::string wire;
  std::string filler(literal_bytes, 'x');
  for (int i = 0; i < fragments; ++i) {
    TagCodec::AppendLiteral(filler, wire);
    TagCodec::AppendGet(static_cast<dynaprox::bem::DpcKey>(i), wire);
  }
  TagCodec::AppendLiteral(filler, wire);
  return wire;
}

// A cold template: fragments inlined in SET blocks.
std::string MakeSetTemplate(int fragments, int fragment_bytes) {
  std::string wire;
  std::string body(fragment_bytes, 'y');
  for (int i = 0; i < fragments; ++i) {
    TagCodec::AppendSet(static_cast<dynaprox::bem::DpcKey>(i), body, wire);
  }
  return wire;
}

void BM_ScanGetTemplate(benchmark::State& state, ScanStrategy strategy) {
  std::string wire = MakeGetTemplate(static_cast<int>(state.range(0)), 500);
  for (auto _ : state) {
    auto segments = ParseTemplate(wire, strategy);
    benchmark::DoNotOptimize(segments);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}

void BM_ScanSetTemplate(benchmark::State& state, ScanStrategy strategy) {
  std::string wire = MakeSetTemplate(static_cast<int>(state.range(0)), 1000);
  for (auto _ : state) {
    auto segments = ParseTemplate(wire, strategy);
    benchmark::DoNotOptimize(segments);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}

void BM_FirewallKmpScan(benchmark::State& state) {
  // Signature scanning over a full page, the firewall's y-per-byte work.
  std::string page = MakeGetTemplate(static_cast<int>(state.range(0)), 500);
  KmpMatcher matcher("attack-signature-not-present");
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.CountOccurrences(page));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(page.size()));
}

void BM_AssembleHotPage(benchmark::State& state) {
  int fragments = static_cast<int>(state.range(0));
  dynaprox::dpc::FragmentStore store(
      static_cast<dynaprox::bem::DpcKey>(fragments));
  std::string content(1000, 'f');
  for (int i = 0; i < fragments; ++i) {
    (void)store.Set(static_cast<dynaprox::bem::DpcKey>(i), content);
  }
  std::string wire = MakeGetTemplate(fragments, 100);
  for (auto _ : state) {
    auto page = dynaprox::dpc::AssemblePage(wire, store);
    benchmark::DoNotOptimize(page);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_ScanGetTemplate, memchr, ScanStrategy::kMemchr)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);
BENCHMARK_CAPTURE(BM_ScanGetTemplate, byteloop, ScanStrategy::kByteLoop)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);
BENCHMARK_CAPTURE(BM_ScanSetTemplate, memchr, ScanStrategy::kMemchr)
    ->Arg(4)
    ->Arg(16);
BENCHMARK_CAPTURE(BM_ScanSetTemplate, byteloop, ScanStrategy::kByteLoop)
    ->Arg(4)
    ->Arg(16);
BENCHMARK(BM_FirewallKmpScan)->Arg(4)->Arg(64);
BENCHMARK(BM_AssembleHotPage)->Arg(4)->Arg(64);

BENCHMARK_MAIN();
