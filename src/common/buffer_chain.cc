#include "common/buffer_chain.h"

#include <cstring>

namespace dynaprox::common {

void BufferChain::Append(Buffer buffer) {
  if (buffer == nullptr || buffer->empty()) return;
  std::string_view whole(*buffer);
  slices_.push_back(Slice{std::move(buffer), whole.data(), whole.size()});
  size_ += whole.size();
}

void BufferChain::Append(Buffer buffer, std::string_view slice) {
  if (buffer == nullptr || slice.empty()) return;
  // Extend the previous slice instead of growing the vector when the new
  // bytes continue it (common for templates whose escape tags split one
  // literal run into many adjacent wire slices).
  if (!slices_.empty()) {
    Slice& last = slices_.back();
    if (last.buffer == buffer && last.data + last.size == slice.data()) {
      last.size += slice.size();
      size_ += slice.size();
      return;
    }
  }
  slices_.push_back(Slice{std::move(buffer), slice.data(), slice.size()});
  size_ += slice.size();
}

void BufferChain::Append(BufferChain other) {
  if (other.empty()) return;
  size_ += other.size_;
  if (slices_.empty()) {
    slices_ = std::move(other.slices_);
  } else {
    slices_.reserve(slices_.size() + other.slices_.size());
    for (Slice& slice : other.slices_) {
      slices_.push_back(std::move(slice));
    }
  }
  other.Clear();
}

void BufferChain::AppendCopy(std::string_view bytes) {
  if (bytes.empty()) return;
  Buffer owned = MakeBuffer(std::string(bytes));
  Append(std::move(owned));
}

void BufferChain::Clear() {
  slices_.clear();
  size_ = 0;
}

std::string BufferChain::Flatten() const {
  std::string out;
  AppendTo(out);
  return out;
}

void BufferChain::AppendTo(std::string& out) const {
  out.reserve(out.size() + size_);
  for (const Slice& slice : slices_) {
    out.append(slice.data, slice.size);
  }
}

bool BufferChain::ContentEquals(std::string_view expected) const {
  if (expected.size() != size_) return false;
  size_t at = 0;
  for (const Slice& slice : slices_) {
    if (std::memcmp(expected.data() + at, slice.data, slice.size) != 0) {
      return false;
    }
    at += slice.size;
  }
  return true;
}

size_t BufferChain::FillIovecs(size_t offset, struct iovec* iov,
                               size_t max_iovecs) const {
  size_t filled = 0;
  for (const Slice& slice : slices_) {
    if (filled >= max_iovecs) break;
    if (offset >= slice.size) {
      offset -= slice.size;
      continue;
    }
    iov[filled].iov_base =
        const_cast<char*>(slice.data + offset);  // writev takes non-const.
    iov[filled].iov_len = slice.size - offset;
    offset = 0;
    ++filled;
  }
  return filled;
}

}  // namespace dynaprox::common
