# Empty dependencies file for dynaprox_common.
# This may be replaced when dependencies are built.
