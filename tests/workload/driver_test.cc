#include "workload/driver.h"

#include <gtest/gtest.h>

namespace dynaprox::workload {
namespace {

class FailingTransport : public net::Transport {
 public:
  Result<http::Response> RoundTrip(const http::Request&) override {
    ++calls_;
    if (calls_ % 3 == 0) return Status::IoError("flaky link");
    return http::Response::MakeOk("ok");
  }

 private:
  int calls_ = 0;
};

TEST(DriverTest, CountsTransportErrorsSeparately) {
  FailingTransport transport;
  RequestStream stream(4, 1.0, 9);
  DriverStats stats = RunWorkload(transport, stream, 300);
  EXPECT_EQ(stats.requests, 300u);
  EXPECT_EQ(stats.transport_errors, 100u);
  EXPECT_EQ(stats.ok_responses, 200u);
  EXPECT_EQ(stats.error_responses, 0u);
  EXPECT_EQ(stats.response_body_bytes, 200u * 2);
}

TEST(DriverTest, ZeroRequestsIsANoOp) {
  FailingTransport transport;
  RequestStream stream(4, 1.0, 9);
  DriverStats stats = RunWorkload(transport, stream, 0);
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.ok_responses, 0u);
}

}  // namespace
}  // namespace dynaprox::workload
