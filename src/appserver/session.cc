#include "appserver/session.h"

#include "common/strings.h"

namespace dynaprox::appserver {

std::string SessionManager::Login(const std::string& user_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string token = "s" + std::to_string(next_token_++);
  sessions_[token] = user_id;
  return token;
}

void SessionManager::Logout(const std::string& token) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(token);
}

size_t SessionManager::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::optional<std::string> SessionManager::TokenFromRequest(
    const http::Request& request) {
  auto params = request.QueryParams();
  if (auto it = params.find("sid"); it != params.end() && !it->second.empty()) {
    return it->second;
  }
  if (auto cookie = request.headers.Get("Cookie"); cookie.has_value()) {
    for (std::string_view part : StrSplit(*cookie, ';')) {
      std::string_view trimmed = StripWhitespace(part);
      if (StartsWith(trimmed, "sid=")) {
        return std::string(trimmed.substr(4));
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> SessionManager::ResolveUser(
    const http::Request& request) const {
  std::optional<std::string> token = TokenFromRequest(request);
  if (!token.has_value()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(*token);
  if (it == sessions_.end()) return std::nullopt;
  return it->second;
}

}  // namespace dynaprox::appserver
