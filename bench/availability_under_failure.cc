// Good-put during a total origin outage: a warmed serve-stale DPC in
// front of a black-holed origin where every dial costs a simulated
// 2 ms timeout. Without a breaker, each request eats the dial timeout
// before falling back to the stale page; with the breaker open,
// requests fast-fail straight to the stale cache. Both configurations
// keep availability at 100% for warmed URLs — the breaker's win is
// throughput and latency, not correctness.

#include <chrono>
#include <cstdio>
#include <string>

#include "common/histogram.h"
#include "dpc/proxy.h"
#include "net/circuit_breaker.h"
#include "net/fault_injection.h"
#include "net/transport.h"

namespace {

using dynaprox::Histogram;
using dynaprox::kMicrosPerMilli;

constexpr int kWarmUrls = 8;
constexpr int kOutageRequests = 2000;
constexpr int kDialTimeoutMs = 2;

dynaprox::http::Request Get(const std::string& target) {
  dynaprox::http::Request request;
  request.target = target;
  return request;
}

struct OutageResult {
  size_t served_200 = 0;
  size_t served_stale = 0;
  double elapsed_ms = 0;
  Histogram latency_ms;
};

// Warms `proxy` over kWarmUrls pages, black-holes the origin via
// `fault`, then drives kOutageRequests round-robin requests.
OutageResult RunOutage(dynaprox::dpc::DpcProxy& proxy,
                       dynaprox::net::FaultInjectingTransport& fault) {
  for (int i = 0; i < kWarmUrls; ++i) {
    proxy.Handle(Get("/page" + std::to_string(i)));
  }
  fault.set_down(true);

  OutageResult result;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOutageRequests; ++i) {
    std::string url = "/page" + std::to_string(i % kWarmUrls);
    auto request_start = std::chrono::steady_clock::now();
    dynaprox::http::Response response = proxy.Handle(Get(url));
    auto request_elapsed =
        std::chrono::steady_clock::now() - request_start;
    result.latency_ms.Record(
        std::chrono::duration<double, std::milli>(request_elapsed)
            .count());
    if (response.status_code == 200) ++result.served_200;
  }
  result.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  result.served_stale = proxy.stats().stale_served;
  fault.set_down(false);
  return result;
}

void PrintRow(const char* label, const OutageResult& r) {
  std::printf("%-12s %9d %7zu %8.1f%% %10.0f %9.0f %9.3f %9.3f\n", label,
              kOutageRequests, r.served_200,
              100.0 * static_cast<double>(r.served_200) / kOutageRequests,
              r.elapsed_ms,
              1000.0 * kOutageRequests / r.elapsed_ms,
              r.latency_ms.mean(), r.latency_ms.Percentile(0.99));
}

}  // namespace

int main() {
  dynaprox::net::DirectTransport origin(
      [](const dynaprox::http::Request& request) {
        return dynaprox::http::Response::MakeOk(
            "body:" + std::string(request.Path()));
      });

  dynaprox::net::FaultInjectionOptions fault_options;
  fault_options.down_failure_delay_micros = kDialTimeoutMs * kMicrosPerMilli;

  std::printf("=== Availability under total origin outage: %d requests, "
              "%d ms dial timeout ===\n",
              kOutageRequests, kDialTimeoutMs);
  std::printf("%-12s %9s %7s %9s %10s %9s %9s %9s\n", "config",
              "requests", "200s", "goodput", "elapsed_ms", "req/s",
              "mean(ms)", "p99(ms)");

  OutageResult no_breaker;
  {
    dynaprox::net::FaultInjectingTransport fault(&origin, fault_options);
    dynaprox::dpc::ProxyOptions options;
    options.serve_stale = true;
    dynaprox::dpc::DpcProxy proxy(&fault, options);
    no_breaker = RunOutage(proxy, fault);
    PrintRow("serve-stale", no_breaker);
  }

  OutageResult with_breaker;
  {
    dynaprox::net::FaultInjectingTransport fault(&origin, fault_options);
    dynaprox::net::CircuitBreakerTransportOptions breaker_options;
    breaker_options.breaker.window = 16;
    breaker_options.breaker.min_samples = 4;
    dynaprox::net::CircuitBreakerTransport guarded(&fault,
                                                   breaker_options);
    dynaprox::dpc::ProxyOptions options;
    options.serve_stale = true;
    options.upstream_breaker = &guarded.breaker();
    dynaprox::dpc::DpcProxy proxy(&guarded, options);
    with_breaker = RunOutage(proxy, fault);
    PrintRow("+breaker", with_breaker);
    dynaprox::net::CircuitBreakerStats stats = guarded.breaker().stats();
    std::printf("  breaker: %llu rejections, %llu opens, dials during "
                "outage: %llu\n",
                static_cast<unsigned long long>(stats.rejections),
                static_cast<unsigned long long>(stats.opens),
                static_cast<unsigned long long>(
                    fault.stats().down_failures));
  }

  double speedup = with_breaker.elapsed_ms == 0
                       ? 0.0
                       : no_breaker.elapsed_ms / with_breaker.elapsed_ms;
  std::printf("outage throughput: serve-stale alone %.0f req/s, with "
              "breaker %.0f req/s (%.1fx)\n",
              1000.0 * kOutageRequests / no_breaker.elapsed_ms,
              1000.0 * kOutageRequests / with_breaker.elapsed_ms, speedup);
  std::printf("expectation: both configs hold 100%% good-put for warmed "
              "URLs; the breaker recovers >=10x outage throughput by "
              "skipping per-request dial timeouts\n");
  return 0;
}
