#include "bem/cache_directory.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/clock.h"

namespace dynaprox::bem {
namespace {

std::unique_ptr<CacheDirectory> MakeDirectory(DpcKey capacity,
                                              const Clock* clock) {
  return std::make_unique<CacheDirectory>(
      capacity, clock, *MakeReplacementPolicy("lru"));
}

FragmentId Frag(const std::string& name) { return FragmentId(name); }

TEST(CacheDirectoryTest, MissThenInsertThenHit) {
  SimClock clock;
  auto dir = MakeDirectory(8, &clock);
  LookupResult miss = dir->Lookup(Frag("navbar"));
  EXPECT_EQ(miss.outcome, LookupOutcome::kMissAbsent);

  Result<DpcKey> key = dir->Insert(Frag("navbar"), 0);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, 0u);

  LookupResult hit = dir->Lookup(Frag("navbar"));
  ASSERT_TRUE(hit.hit());
  EXPECT_EQ(hit.key, *key);
  EXPECT_EQ(dir->stats().hits, 1u);
  EXPECT_EQ(dir->stats().misses, 1u);
}

TEST(CacheDirectoryTest, SequentialKeysFromFreeList) {
  SimClock clock;
  auto dir = MakeDirectory(8, &clock);
  EXPECT_EQ(*dir->Insert(Frag("a"), 0), 0u);
  EXPECT_EQ(*dir->Insert(Frag("b"), 0), 1u);
  EXPECT_EQ(*dir->Insert(Frag("c"), 0), 2u);
  EXPECT_EQ(dir->valid_count(), 3u);
  EXPECT_EQ(dir->free_key_count(), 5u);
}

TEST(CacheDirectoryTest, InvalidateReleasesKeyToTail) {
  SimClock clock;
  auto dir = MakeDirectory(3, &clock);
  ASSERT_TRUE(dir->Insert(Frag("a"), 0).ok());  // key 0.
  ASSERT_TRUE(dir->Invalidate(Frag("a")).ok());
  EXPECT_EQ(dir->Lookup(Frag("a")).outcome, LookupOutcome::kMissInvalid);
  // Keys 1 and 2 precede the released 0.
  EXPECT_EQ(*dir->Insert(Frag("b"), 0), 1u);
  EXPECT_EQ(*dir->Insert(Frag("c"), 0), 2u);
  EXPECT_EQ(*dir->Insert(Frag("d"), 0), 0u);  // Reuses the released key.
}

TEST(CacheDirectoryTest, PinnedInvalidateKeyReusesTheSameKey) {
  // The refresh protocol's contract: a pin_key invalidation must hand the
  // same dpcKey back to the next Insert, so the DPC's committed `GET key`
  // can be filled by the refreshed SET.
  SimClock clock;
  auto dir = MakeDirectory(8, &clock);
  ASSERT_TRUE(dir->Insert(Frag("a"), 0).ok());      // key 0.
  DpcKey hot = *dir->Insert(Frag("hot"), 0);        // key 1.
  ASSERT_TRUE(dir->Insert(Frag("c"), 0).ok());      // key 2.
  Result<std::string> owner = dir->InvalidateKey(hot, /*pin_key=*/true);
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, Frag("hot").Canonical());
  // Re-render re-inserts the same fragment: same key, ahead of 3..7.
  EXPECT_EQ(*dir->Insert(Frag("hot"), 0), hot);
}

TEST(CacheDirectoryTest, InvalidateUnknownFails) {
  SimClock clock;
  auto dir = MakeDirectory(2, &clock);
  EXPECT_TRUE(dir->Invalidate(Frag("ghost")).IsNotFound());
  ASSERT_TRUE(dir->Insert(Frag("a"), 0).ok());
  ASSERT_TRUE(dir->Invalidate(Frag("a")).ok());
  EXPECT_TRUE(dir->Invalidate(Frag("a")).IsNotFound());  // Already invalid.
}

TEST(CacheDirectoryTest, TtlExpiryIsLazy) {
  SimClock clock;
  auto dir = MakeDirectory(4, &clock);
  ASSERT_TRUE(dir->Insert(Frag("quote"), 10 * kMicrosPerSecond).ok());
  clock.AdvanceSeconds(5);
  EXPECT_TRUE(dir->Lookup(Frag("quote")).hit());
  clock.AdvanceSeconds(6);
  EXPECT_EQ(dir->Lookup(Frag("quote")).outcome,
            LookupOutcome::kMissExpired);
  EXPECT_EQ(dir->stats().ttl_invalidations, 1u);
  // Further lookups see the invalid entry.
  EXPECT_EQ(dir->Lookup(Frag("quote")).outcome,
            LookupOutcome::kMissInvalid);
}

TEST(CacheDirectoryTest, ZeroTtlNeverExpires) {
  SimClock clock;
  auto dir = MakeDirectory(4, &clock);
  ASSERT_TRUE(dir->Insert(Frag("eternal"), 0).ok());
  clock.AdvanceSeconds(1e6);
  EXPECT_TRUE(dir->Lookup(Frag("eternal")).hit());
}

TEST(CacheDirectoryTest, SweepExpiredInvalidatesAllExpired) {
  SimClock clock;
  auto dir = MakeDirectory(8, &clock);
  ASSERT_TRUE(dir->Insert(Frag("fast"), 1 * kMicrosPerSecond).ok());
  ASSERT_TRUE(dir->Insert(Frag("slow"), 100 * kMicrosPerSecond).ok());
  ASSERT_TRUE(dir->Insert(Frag("none"), 0).ok());
  clock.AdvanceSeconds(2);
  EXPECT_EQ(dir->SweepExpired(), 1u);
  EXPECT_EQ(dir->valid_count(), 2u);
  clock.AdvanceSeconds(200);
  EXPECT_EQ(dir->SweepExpired(), 1u);
  EXPECT_TRUE(dir->Lookup(Frag("none")).hit());
}

TEST(CacheDirectoryTest, ReinsertValidFragmentGetsFreshKey) {
  SimClock clock;
  auto dir = MakeDirectory(4, &clock);
  DpcKey first = *dir->Insert(Frag("a"), 0);
  DpcKey second = *dir->Insert(Frag("a"), 0);
  EXPECT_NE(first, second);
  EXPECT_EQ(dir->valid_count(), 1u);
  LookupResult hit = dir->Lookup(Frag("a"));
  ASSERT_TRUE(hit.hit());
  EXPECT_EQ(hit.key, second);
}

TEST(CacheDirectoryTest, KeyReuseReclaimsStaleEntry) {
  SimClock clock;
  auto dir = MakeDirectory(1, &clock);
  ASSERT_TRUE(dir->Insert(Frag("old"), 0).ok());      // key 0.
  ASSERT_TRUE(dir->Invalidate(Frag("old")).ok());     // key 0 released.
  ASSERT_TRUE(dir->Insert(Frag("new"), 0).ok());      // Reuses key 0.
  // The stale "old" entry must be gone: directory size bounded by capacity.
  EXPECT_EQ(dir->entry_count(), 1u);
  EXPECT_EQ(dir->Lookup(Frag("old")).outcome, LookupOutcome::kMissAbsent);
  EXPECT_TRUE(dir->Lookup(Frag("new")).hit());
}

TEST(CacheDirectoryTest, EvictionWhenKeySpaceExhausted) {
  SimClock clock;
  auto dir = MakeDirectory(2, &clock);
  ASSERT_TRUE(dir->Insert(Frag("a"), 0).ok());
  ASSERT_TRUE(dir->Insert(Frag("b"), 0).ok());
  // "a" is LRU; inserting "c" evicts it.
  ASSERT_TRUE(dir->Insert(Frag("c"), 0).ok());
  EXPECT_EQ(dir->stats().evictions, 1u);
  EXPECT_EQ(dir->Lookup(Frag("a")).outcome, LookupOutcome::kMissAbsent);
  EXPECT_TRUE(dir->Lookup(Frag("b")).hit());
  EXPECT_TRUE(dir->Lookup(Frag("c")).hit());
}

TEST(CacheDirectoryTest, AccessOrderShapesEviction) {
  SimClock clock;
  auto dir = MakeDirectory(2, &clock);
  ASSERT_TRUE(dir->Insert(Frag("a"), 0).ok());
  ASSERT_TRUE(dir->Insert(Frag("b"), 0).ok());
  EXPECT_TRUE(dir->Lookup(Frag("a")).hit());  // "b" becomes LRU.
  ASSERT_TRUE(dir->Insert(Frag("c"), 0).ok());
  EXPECT_TRUE(dir->Lookup(Frag("a")).hit());
  EXPECT_EQ(dir->Lookup(Frag("b")).outcome, LookupOutcome::kMissAbsent);
}

TEST(CacheDirectoryTest, InvalidateAllReleasesEverything) {
  SimClock clock;
  auto dir = MakeDirectory(4, &clock);
  ASSERT_TRUE(dir->Insert(Frag("a"), 0).ok());
  ASSERT_TRUE(dir->Insert(Frag("b"), 0).ok());
  EXPECT_EQ(dir->InvalidateAll(), 2u);
  EXPECT_EQ(dir->valid_count(), 0u);
  EXPECT_EQ(dir->free_key_count(), 4u);
  EXPECT_EQ(dir->InvalidateAll(), 0u);
}

TEST(CacheDirectoryTest, InvalidateKeyFindsOwner) {
  SimClock clock;
  auto dir = MakeDirectory(4, &clock);
  DpcKey key = *dir->Insert(Frag("a"), 0);
  Result<std::string> owner = dir->InvalidateKey(key);
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, "a");
  EXPECT_EQ(dir->Lookup(Frag("a")).outcome, LookupOutcome::kMissInvalid);
  EXPECT_TRUE(dir->InvalidateKey(key).status().IsNotFound());
  EXPECT_TRUE(dir->InvalidateKey(99).status().IsInvalidArgument());
}

TEST(CacheDirectoryTest, KeyOfReportsValidEntriesOnly) {
  SimClock clock;
  auto dir = MakeDirectory(4, &clock);
  DpcKey key = *dir->Insert(Frag("a"), 0);
  ASSERT_TRUE(dir->KeyOf(Frag("a")).ok());
  EXPECT_EQ(*dir->KeyOf(Frag("a")), key);
  ASSERT_TRUE(dir->Invalidate(Frag("a")).ok());
  EXPECT_TRUE(dir->KeyOf(Frag("a")).status().IsNotFound());
}

// Invariant sweep: under a random-ish workload the directory never exceeds
// capacity, and valid + free key counts always total capacity.
TEST(CacheDirectoryTest, InvariantsHoldUnderChurn) {
  SimClock clock;
  const DpcKey kCapacity = 8;
  auto dir = MakeDirectory(kCapacity, &clock);
  for (int i = 0; i < 500; ++i) {
    FragmentId id("f" + std::to_string(i % 20));
    LookupResult lookup = dir->Lookup(id);
    if (!lookup.hit()) {
      ASSERT_TRUE(dir->Insert(id, (i % 3 == 0) ? 5 : 0).ok());
    }
    if (i % 7 == 0) {
      (void)dir->Invalidate(FragmentId("f" + std::to_string((i / 7) % 20)));
    }
    clock.AdvanceMicros(1);
    ASSERT_LE(dir->entry_count(), kCapacity);
    ASSERT_EQ(dir->valid_count() + dir->free_key_count(), kCapacity);
  }
  EXPECT_GT(dir->stats().evictions, 0u);
}

}  // namespace
}  // namespace dynaprox::bem
