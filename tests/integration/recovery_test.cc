// Failure-injection integration tests: DPC restart (cold cache), firewall
// in the path, corrupt templates from a buggy origin.

#include <memory>

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "bem/protocol.h"
#include "common/clock.h"
#include "dpc/proxy.h"
#include "firewall/firewall.h"
#include "net/transport.h"
#include "storage/table.h"

namespace dynaprox {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.RegisterOrReplace(
        "/page", [this](appserver::ScriptContext& context) {
          context.Emit("[");
          Status status = context.CacheableBlock(
              bem::FragmentId("body"),
              [this](appserver::ScriptContext& ctx) {
                ++generations_;
                ctx.Emit("fragment-body");
                return Status::Ok();
              });
          if (!status.ok()) return status;
          context.Emit("]");
          return Status::Ok();
        });

    bem::BemOptions bem_options;
    bem_options.capacity = 8;
    bem_options.clock = &clock_;
    monitor_ = *bem::BackEndMonitor::Create(bem_options);
    origin_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, monitor_.get());
    upstream_ =
        std::make_unique<net::DirectTransport>(origin_->AsHandler());
    dpc::ProxyOptions proxy_options;
    proxy_options.capacity = 8;
    dpc_ = std::make_unique<dpc::DpcProxy>(upstream_.get(), proxy_options);
  }

  http::Response Fetch() {
    http::Request request;
    request.target = "/page";
    return dpc_->Handle(request);
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<appserver::OriginServer> origin_;
  std::unique_ptr<net::DirectTransport> upstream_;
  std::unique_ptr<dpc::DpcProxy> dpc_;
  int generations_ = 0;
};

TEST_F(RecoveryTest, DpcRestartRecoversTransparently) {
  EXPECT_EQ(Fetch().BodyText(), "[fragment-body]");
  EXPECT_EQ(Fetch().BodyText(), "[fragment-body]");
  EXPECT_EQ(generations_, 1);

  // Crash/restart the DPC: its slots are empty but the BEM still believes
  // the fragment is cached and emits a GET.
  dpc_->ClearCache();
  http::Response recovered = Fetch();
  EXPECT_EQ(recovered.status_code, 200);
  EXPECT_EQ(recovered.BodyText(), "[fragment-body]");
  EXPECT_EQ(dpc_->stats().recoveries, 1u);
  EXPECT_EQ(generations_, 2);  // Regenerated once via refresh.

  // Back to steady state afterwards.
  EXPECT_EQ(Fetch().BodyText(), "[fragment-body]");
  EXPECT_EQ(generations_, 2);
}

TEST_F(RecoveryTest, RepeatedRestartsAlwaysRecover) {
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(Fetch().BodyText(), "[fragment-body]");
    dpc_->ClearCache();
  }
  EXPECT_EQ(Fetch().BodyText(), "[fragment-body]");
  EXPECT_EQ(dpc_->stats().template_errors, 0u);
}

TEST_F(RecoveryTest, FirewallBetweenDpcAndOriginStillWorks) {
  firewall::ScanningFirewall firewall(upstream_.get(), {"EVIL"});
  dpc::ProxyOptions proxy_options;
  proxy_options.capacity = 8;
  dpc::DpcProxy guarded(&firewall, proxy_options);

  http::Request request;
  request.target = "/page";
  EXPECT_EQ(guarded.Handle(request).BodyText(), "[fragment-body]");
  EXPECT_EQ(guarded.Handle(request).BodyText(), "[fragment-body]");
  EXPECT_EQ(firewall.stats().blocked, 0u);
  // The firewall scanned request+response for each round trip.
  EXPECT_EQ(firewall.stats().messages, 4u);

  http::Request attack;
  attack.target = "/page";
  attack.body = "EVIL payload";
  // The firewall's 403 passes through the DPC untouched (no template).
  EXPECT_EQ(guarded.Handle(attack).status_code, 403);
  EXPECT_EQ(firewall.stats().blocked, 1u);
}

TEST_F(RecoveryTest, OriginScriptFailurePropagatesAsError) {
  registry_.RegisterOrReplace("/flaky",
                              [](appserver::ScriptContext& context) {
                                return context.CacheableBlock(
                                    bem::FragmentId("flaky"),
                                    [](appserver::ScriptContext&) {
                                      return Status::IoError("db down");
                                    });
                              });
  http::Request request;
  request.target = "/flaky";
  http::Response response = dpc_->Handle(request);
  EXPECT_EQ(response.status_code, 500);
  // The failed fragment was not cached; a fixed script recovers.
  registry_.RegisterOrReplace("/flaky",
                              [](appserver::ScriptContext& context) {
                                return context.CacheableBlock(
                                    bem::FragmentId("flaky"),
                                    [](appserver::ScriptContext& ctx) {
                                      ctx.Emit("ok now");
                                      return Status::Ok();
                                    });
                              });
  EXPECT_EQ(dpc_->Handle(request).BodyText(), "ok now");
}

}  // namespace
}  // namespace dynaprox
