# Empty dependencies file for dynaprox_appserver.
# This may be replaced when dependencies are built.
