#include "bem/dependency_registry.h"

namespace dynaprox::bem {

void DependencyRegistry::Add(const std::string& canonical,
                             const std::string& table,
                             const std::string& row_key) {
  std::lock_guard<common::ContendedMutex> lock(mu_);
  by_source_[table][row_key].insert(canonical);
  by_fragment_[canonical].insert(Dep{table, row_key});
}

void DependencyRegistry::RemoveFragment(const std::string& canonical) {
  std::lock_guard<common::ContendedMutex> lock(mu_);
  auto it = by_fragment_.find(canonical);
  if (it == by_fragment_.end()) return;
  for (const Dep& dep : it->second) {
    auto table_it = by_source_.find(dep.table);
    if (table_it == by_source_.end()) continue;
    auto row_it = table_it->second.find(dep.row_key);
    if (row_it == table_it->second.end()) continue;
    row_it->second.erase(canonical);
    if (row_it->second.empty()) table_it->second.erase(row_it);
    if (table_it->second.empty()) by_source_.erase(table_it);
  }
  by_fragment_.erase(it);
}

void DependencyRegistry::Clear() {
  std::lock_guard<common::ContendedMutex> lock(mu_);
  by_source_.clear();
  by_fragment_.clear();
}

std::vector<std::string> DependencyRegistry::Affected(
    const storage::UpdateEvent& event) const {
  std::lock_guard<common::ContendedMutex> lock(mu_);
  std::set<std::string> result;
  auto table_it = by_source_.find(event.table);
  if (table_it == by_source_.end()) return {};
  // Table-level dependents.
  if (auto row_it = table_it->second.find(""); row_it != table_it->second.end()) {
    result.insert(row_it->second.begin(), row_it->second.end());
  }
  // Row-level dependents.
  if (!event.key.empty()) {
    if (auto row_it = table_it->second.find(event.key);
        row_it != table_it->second.end()) {
      result.insert(row_it->second.begin(), row_it->second.end());
    }
  }
  return std::vector<std::string>(result.begin(), result.end());
}

}  // namespace dynaprox::bem
