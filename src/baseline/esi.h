#ifndef DYNAPROX_BASELINE_ESI_H_
#define DYNAPROX_BASELINE_ESI_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "http/message.h"
#include "net/transport.h"

namespace dynaprox::baseline {

// One piece of an ESI-style page template: literal markup or an include
// that fetches a separately-addressable fragment script from the origin.
struct EsiPart {
  enum class Kind { kLiteral, kInclude };

  Kind kind = Kind::kLiteral;
  std::string text;           // kLiteral: markup emitted verbatim.
  std::string fragment_path;  // kInclude: origin path of the fragment
                              // script (e.g. "/frag/navbar").
  bool forward_query = true;  // kInclude: append the page request's query.
  MicroTime ttl_micros = 0;   // kInclude: fragment cache TTL; <=0 forever.

  static EsiPart Literal(std::string markup);
  static EsiPart Include(std::string path, MicroTime ttl_micros = 0,
                         bool forward_query = true);
};

// A page template: the *pre-defined layout* Section 3.2.2 identifies as
// dynamic page assembly's key limitation. The layout is fixed at design
// time per URL path; it cannot react to per-request state.
struct EsiTemplate {
  std::vector<EsiPart> parts;
};

// Maps page paths to templates.
class EsiRegistry {
 public:
  void Register(const std::string& path, EsiTemplate page_template);
  Result<const EsiTemplate*> Find(const std::string& path) const;
  size_t size() const { return templates_.size(); }

 private:
  std::map<std::string, EsiTemplate> templates_;
};

struct EsiStats {
  uint64_t page_requests = 0;
  uint64_t fragment_origin_fetches = 0;  // Includes resolved at the origin.
  uint64_t fragment_cache_hits = 0;
  uint64_t fragment_errors = 0;
  uint64_t bytes_from_upstream = 0;
};

struct EsiOptions {
  const Clock* clock = nullptr;  // Defaults to SystemClock.
};

// The Section 3.2.2 comparator: an Akamai-ESI / WebSphere-trigger-monitor
// style edge assembler. Each include is fetched from the origin as its own
// URL-keyed request and cached by URL. Faithful to the approach's two
// documented limitations:
//  * layout is the template's, regardless of per-request state;
//  * interdependent fragments redo shared work at the origin (each include
//    is an independent script invocation).
// Not thread-safe (used by single-threaded comparison benches).
class EsiAssembler {
 public:
  // `registry` and `origin` must outlive the assembler.
  EsiAssembler(const EsiRegistry* registry, net::Transport* origin,
               EsiOptions options = {});

  // Assembles the template for the request's path. Requests with no
  // registered template are proxied through unmodified.
  http::Response Handle(const http::Request& request);
  net::Handler AsHandler();

  // Drops cached fragments (all, or one include URL).
  size_t InvalidateAll();
  bool InvalidateFragmentUrl(const std::string& url);

  const EsiStats& stats() const { return stats_; }

 private:
  struct CachedFragment {
    std::string content;
    MicroTime cached_at;
  };

  // Fetches (or serves from cache) one include; appends to `page`.
  void ResolveInclude(const EsiPart& part, const http::Request& request,
                      std::string& page);

  const EsiRegistry* registry_;
  net::Transport* origin_;
  EsiOptions options_;
  std::map<std::string, CachedFragment> fragments_;  // By include URL.
  EsiStats stats_;
};

}  // namespace dynaprox::baseline

#endif  // DYNAPROX_BASELINE_ESI_H_
