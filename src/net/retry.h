#ifndef DYNAPROX_NET_RETRY_H_
#define DYNAPROX_NET_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/clock.h"
#include "net/transport.h"

namespace dynaprox::net {

struct RetryOptions {
  // Total attempts (first try included). Must be >= 1.
  int max_attempts = 3;
  // Sleep between attempts; doubled each retry (0 disables sleeping).
  MicroTime initial_backoff_micros = 0;
};

struct RetryStats {
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t gave_up = 0;
};

// Transport decorator that retries transport-level failures (the Status
// error path: connect resets, origin restarts). HTTP-level error responses
// pass through untouched — they are answers, not failures. Intended for
// idempotent (GET-dominated) traffic like the DPC's origin link. Not
// thread-safe counters aside, RoundTrip itself is safe if `inner` is.
class RetryTransport : public Transport {
 public:
  // `inner` must outlive the decorator.
  RetryTransport(Transport* inner, RetryOptions options)
      : inner_(inner),
        options_(options.max_attempts < 1 ? RetryOptions{1, 0} : options) {}

  Result<http::Response> RoundTrip(const http::Request& request) override {
    MicroTime backoff = options_.initial_backoff_micros;
    Status last = Status::Internal("unreachable");
    for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
      ++stats_.attempts;
      if (attempt > 0) {
        ++stats_.retries;
        if (backoff > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(backoff));
          backoff *= 2;
        }
      }
      Result<http::Response> response = inner_->RoundTrip(request);
      if (response.ok()) return response;
      last = response.status();
    }
    ++stats_.gave_up;
    return last;
  }

  const RetryStats& stats() const { return stats_; }

 private:
  Transport* inner_;
  RetryOptions options_;
  RetryStats stats_;
};

}  // namespace dynaprox::net

#endif  // DYNAPROX_NET_RETRY_H_
