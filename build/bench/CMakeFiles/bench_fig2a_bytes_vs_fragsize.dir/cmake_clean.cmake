file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_bytes_vs_fragsize.dir/fig2a_bytes_vs_fragsize.cc.o"
  "CMakeFiles/bench_fig2a_bytes_vs_fragsize.dir/fig2a_bytes_vs_fragsize.cc.o.d"
  "bench_fig2a_bytes_vs_fragsize"
  "bench_fig2a_bytes_vs_fragsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_bytes_vs_fragsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
