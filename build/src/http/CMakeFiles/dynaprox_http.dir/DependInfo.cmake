
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/cache_control.cc" "src/http/CMakeFiles/dynaprox_http.dir/cache_control.cc.o" "gcc" "src/http/CMakeFiles/dynaprox_http.dir/cache_control.cc.o.d"
  "/root/repo/src/http/header_map.cc" "src/http/CMakeFiles/dynaprox_http.dir/header_map.cc.o" "gcc" "src/http/CMakeFiles/dynaprox_http.dir/header_map.cc.o.d"
  "/root/repo/src/http/message.cc" "src/http/CMakeFiles/dynaprox_http.dir/message.cc.o" "gcc" "src/http/CMakeFiles/dynaprox_http.dir/message.cc.o.d"
  "/root/repo/src/http/parser.cc" "src/http/CMakeFiles/dynaprox_http.dir/parser.cc.o" "gcc" "src/http/CMakeFiles/dynaprox_http.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dynaprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
