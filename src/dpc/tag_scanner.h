#ifndef DYNAPROX_DPC_TAG_SCANNER_H_
#define DYNAPROX_DPC_TAG_SCANNER_H_

#include <string>
#include <string_view>
#include <vector>

#include "bem/types.h"
#include "common/result.h"

namespace dynaprox::dpc {

// How the scanner locates the next tag marker in the template. kMemchr is
// the production choice; kByteLoop exists for the scanning-cost ablation
// (bench_ablation_scanner).
enum class ScanStrategy {
  kMemchr,
  kByteLoop,
};

// One parsed piece of a response template. Segments do not own their
// payload: `pieces` are views into the scanned wire bytes, which must
// outlive the segment vector (the assembler retains the wire buffer in
// the page's BufferChain for exactly this reason). A payload is usually
// one contiguous view; literal-escape tags split it into several, because
// the escape's own STX byte doubles as the emitted byte — so even escaped
// output aliases the wire and the scanner never copies or allocates
// per-byte.
struct TemplateSegment {
  enum class Kind {
    kLiteral,  // Page text to emit verbatim (already unescaped).
    kSet,      // Store the payload under `key`, then emit it.
    kGet,      // Emit the cached fragment stored under `key`.
  };

  Kind kind;
  bem::DpcKey key = bem::kInvalidDpcKey;
  std::vector<std::string_view> pieces;  // Empty for kGet.

  // Total payload bytes across pieces.
  size_t text_size() const {
    size_t total = 0;
    for (std::string_view piece : pieces) total += piece.size();
    return total;
  }

  // Materializes the payload (tests and fragment-store inserts; the
  // zero-copy assembly path splices `pieces` directly).
  std::string Text() const {
    std::string out;
    out.reserve(text_size());
    for (std::string_view piece : pieces) out.append(piece);
    return out;
  }
};

// Parses a BEM-encoded response template (see bem::TagCodec for the wire
// grammar) into segments viewing `wire`. Fails with Corruption on
// malformed input: truncated tags, unknown markers, bad hex keys, SET
// without matching end, nested SET, or GET inside SET.
Result<std::vector<TemplateSegment>> ParseTemplate(
    std::string_view wire, ScanStrategy strategy = ScanStrategy::kMemchr);

}  // namespace dynaprox::dpc

#endif  // DYNAPROX_DPC_TAG_SCANNER_H_
