#include "common/deadline.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace dynaprox::common {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_micros(), INT64_MAX);
}

TEST(DeadlineTest, NonPositiveBudgetMeansInfinite) {
  SimClock clock(1000);
  EXPECT_TRUE(Deadline::After(&clock, 0).infinite());
  EXPECT_TRUE(Deadline::After(&clock, -5).infinite());
  EXPECT_TRUE(Deadline::After(nullptr, 100).infinite());
}

TEST(DeadlineTest, ExpiresWhenTheClockPassesIt) {
  SimClock clock(0);
  Deadline deadline = Deadline::After(&clock, 100);
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_micros(), 100);
  clock.AdvanceMicros(60);
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_micros(), 40);
  clock.AdvanceMicros(40);
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_micros(), 0);
  clock.AdvanceMicros(1000);  // Stays expired, remaining clamps at 0.
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_micros(), 0);
}

TEST(DeadlineTest, EarliestPrefersTheTighterBudget) {
  SimClock clock(0);
  Deadline narrow = Deadline::After(&clock, 50);
  Deadline wide = Deadline::After(&clock, 500);
  EXPECT_EQ(Deadline::Earliest(narrow, wide).remaining_micros(), 50);
  EXPECT_EQ(Deadline::Earliest(wide, narrow).remaining_micros(), 50);
  // Infinite always loses to a finite deadline.
  EXPECT_EQ(Deadline::Earliest(Deadline{}, narrow).remaining_micros(), 50);
  EXPECT_EQ(Deadline::Earliest(narrow, Deadline{}).remaining_micros(), 50);
  EXPECT_TRUE(Deadline::Earliest(Deadline{}, Deadline{}).infinite());
}

TEST(DeadlineTest, ScopeNestsAndRestores) {
  SimClock clock(0);
  EXPECT_TRUE(CurrentDeadline().infinite());
  {
    DeadlineScope outer(Deadline::After(&clock, 1000));
    EXPECT_EQ(CurrentDeadline().remaining_micros(), 1000);
    {
      DeadlineScope inner(
          Deadline::Earliest(CurrentDeadline(), Deadline::After(&clock, 10)));
      EXPECT_EQ(CurrentDeadline().remaining_micros(), 10);
    }
    EXPECT_EQ(CurrentDeadline().remaining_micros(), 1000);
  }
  EXPECT_TRUE(CurrentDeadline().infinite());
}

TEST(DeadlineTest, NestedScopeCannotWidenAnOuterBudgetViaEarliest) {
  // The pattern every tier uses: combine its own budget with whatever is
  // already ambient. A nested hop configured with a *looser* budget must
  // not escape the outer one.
  SimClock clock(0);
  DeadlineScope outer(Deadline::After(&clock, 100));
  DeadlineScope inner(
      Deadline::Earliest(CurrentDeadline(), Deadline::After(&clock, 5000)));
  EXPECT_EQ(CurrentDeadline().remaining_micros(), 100);
}

TEST(DeadlineTest, ErrorIsRecognizable) {
  Status status = DeadlineExceededError("upstream fetch");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsDeadlineExceeded(status));
  EXPECT_NE(status.message().find("upstream fetch"), std::string::npos);
  EXPECT_FALSE(IsDeadlineExceeded(Status::Ok()));
  EXPECT_FALSE(IsDeadlineExceeded(Status::Unavailable("origin down")));
  EXPECT_FALSE(IsDeadlineExceeded(Status::IoError("deadline exceeded: x")));
}

// The acceptance property behind the whole feature: a retry loop that
// charges time per attempt stops as soon as the shared budget runs out,
// no matter how many attempts its own policy would allow. Before the
// Deadline existed, each layer's retries stacked (attempts x per-try
// timeout per layer), worst-casing far past the client's own timeout.
TEST(DeadlineTest, StackedRetriesAreBoundedByTheSharedBudget) {
  SimClock clock(0);
  constexpr MicroTime kBudget = 1000;
  constexpr MicroTime kPerAttemptCost = 300;
  DeadlineScope scope(Deadline::After(&clock, kBudget));

  // An "outer" layer that retries 10 times, calling an "inner" layer
  // that also retries 10 times — 100 attempts if nothing bounds them.
  int attempts = 0;
  auto attempt_once = [&] {
    ++attempts;
    clock.AdvanceMicros(kPerAttemptCost);
    return Status::Unavailable("still down");
  };
  auto inner_layer = [&]() -> Status {
    for (int i = 0; i < 10; ++i) {
      if (CurrentDeadline().expired()) {
        return DeadlineExceededError("inner retry");
      }
      attempt_once();
    }
    return Status::Unavailable("inner exhausted");
  };
  Status final_status = Status::Ok();
  for (int i = 0; i < 10; ++i) {
    if (CurrentDeadline().expired()) {
      final_status = DeadlineExceededError("outer retry");
      break;
    }
    final_status = inner_layer();
  }

  EXPECT_TRUE(IsDeadlineExceeded(final_status));
  // ceil(1000 / 300) = 4 attempts fit before the budget is spent; the
  // remaining 96 are never made.
  EXPECT_EQ(attempts, 4);
  EXPECT_LE(clock.NowMicros(), kBudget + kPerAttemptCost);
}

}  // namespace
}  // namespace dynaprox::common
