#include "dpc/kmp.h"

namespace dynaprox::dpc {

KmpMatcher::KmpMatcher(std::string pattern) : pattern_(std::move(pattern)) {
  failure_.assign(pattern_.size(), 0);
  size_t k = 0;
  for (size_t i = 1; i < pattern_.size(); ++i) {
    while (k > 0 && pattern_[i] != pattern_[k]) k = failure_[k - 1];
    if (pattern_[i] == pattern_[k]) ++k;
    failure_[i] = k;
  }
}

size_t KmpMatcher::FindFirst(std::string_view text, size_t from) const {
  if (pattern_.empty()) return from <= text.size() ? from : npos;
  size_t k = 0;
  for (size_t i = from; i < text.size(); ++i) {
    while (k > 0 && text[i] != pattern_[k]) k = failure_[k - 1];
    if (text[i] == pattern_[k]) ++k;
    if (k == pattern_.size()) return i + 1 - pattern_.size();
  }
  return npos;
}

std::vector<size_t> KmpMatcher::FindAll(std::string_view text) const {
  std::vector<size_t> matches;
  if (pattern_.empty()) return matches;
  size_t k = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    while (k > 0 && text[i] != pattern_[k]) k = failure_[k - 1];
    if (text[i] == pattern_[k]) ++k;
    if (k == pattern_.size()) {
      matches.push_back(i + 1 - pattern_.size());
      k = failure_[k - 1];
    }
  }
  return matches;
}

size_t KmpMatcher::CountOccurrences(std::string_view text) const {
  if (pattern_.empty()) return 0;
  size_t count = 0;
  size_t k = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    while (k > 0 && text[i] != pattern_[k]) k = failure_[k - 1];
    if (text[i] == pattern_[k]) ++k;
    if (k == pattern_.size()) {
      ++count;
      k = failure_[k - 1];
    }
  }
  return count;
}

size_t NaiveFindFirst(std::string_view text, std::string_view pattern,
                      size_t from) {
  if (pattern.empty()) return from <= text.size() ? from : KmpMatcher::npos;
  if (text.size() < pattern.size()) return KmpMatcher::npos;
  for (size_t i = from; i + pattern.size() <= text.size(); ++i) {
    if (text.compare(i, pattern.size(), pattern) == 0) return i;
  }
  return KmpMatcher::npos;
}

}  // namespace dynaprox::dpc
