#include "edge/hash_ring.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

namespace dynaprox::edge {
namespace {

TEST(HashRingTest, RoutesConsistently) {
  HashRing ring;
  ASSERT_TRUE(ring.AddNode("a").ok());
  ASSERT_TRUE(ring.AddNode("b").ok());
  Result<std::string> first = ring.Route("client-1");
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(*ring.Route("client-1"), *first);
  }
}

TEST(HashRingTest, EmptyRingFails) {
  HashRing ring;
  EXPECT_EQ(ring.Route("x").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(HashRingTest, DuplicateAddFails) {
  HashRing ring;
  ASSERT_TRUE(ring.AddNode("a").ok());
  EXPECT_EQ(ring.AddNode("a").code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(ring.AddNode("b", 0).ok());
}

TEST(HashRingTest, SpreadsKeysAcrossNodes) {
  HashRing ring;
  for (const char* node : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(ring.AddNode(node, 64).ok());
  }
  std::map<std::string, int> counts;
  for (int i = 0; i < 4000; ++i) {
    ++counts[*ring.Route("key" + std::to_string(i))];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [node, count] : counts) {
    EXPECT_GT(count, 400) << node;  // Expect ~1000 each; loose bound.
  }
}

TEST(HashRingTest, DownNodeSkippedAndRestored) {
  HashRing ring;
  ASSERT_TRUE(ring.AddNode("a").ok());
  ASSERT_TRUE(ring.AddNode("b").ok());
  // Find a key that routes to "a".
  std::string key_on_a;
  for (int i = 0; i < 1000; ++i) {
    std::string key = "k" + std::to_string(i);
    if (*ring.Route(key) == "a") {
      key_on_a = key;
      break;
    }
  }
  ASSERT_FALSE(key_on_a.empty());
  ASSERT_TRUE(ring.MarkDown("a").ok());
  EXPECT_EQ(*ring.Route(key_on_a), "b");  // Failover.
  EXPECT_EQ(ring.live_node_count(), 1u);
  ASSERT_TRUE(ring.MarkUp("a").ok());
  EXPECT_EQ(*ring.Route(key_on_a), "a");  // Affinity restored.
}

TEST(HashRingTest, AllDownFails) {
  HashRing ring;
  ASSERT_TRUE(ring.AddNode("a").ok());
  ASSERT_TRUE(ring.MarkDown("a").ok());
  EXPECT_FALSE(ring.Route("x").ok());
}

// Regression: an all-down ring used to spin forever walking for a live
// node (every position down, the walk never terminated). It must return
// promptly — and with Unavailable, not the empty ring's
// FailedPrecondition, so callers can tell "retry after MarkUp" from
// "misconfigured".
TEST(HashRingTest, AllDownIsUnavailableNotFailedPrecondition) {
  HashRing ring;
  ASSERT_TRUE(ring.AddNode("a").ok());
  ASSERT_TRUE(ring.AddNode("b").ok());
  ASSERT_TRUE(ring.MarkDown("a").ok());
  ASSERT_TRUE(ring.MarkDown("b").ok());
  Status status = ring.Route("x").status();
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_EQ(ring.live_node_count(), 0u);
  // Recovery is a MarkUp away.
  ASSERT_TRUE(ring.MarkUp("b").ok());
  EXPECT_EQ(*ring.Route("x"), "b");
}

// Rebalance math: at the production vnode count (40), no node's share of
// a many-key universe should be wildly off 1/N.
TEST(HashRingTest, VnodeSpreadIsBalanced) {
  HashRing ring;
  const int kNodes = 5;
  for (int n = 0; n < kNodes; ++n) {
    ASSERT_TRUE(ring.AddNode("edge-" + std::to_string(n), 40).ok());
  }
  std::map<std::string, int> counts;
  const int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[*ring.Route("k:" + std::to_string(i))];
  }
  ASSERT_EQ(counts.size(), static_cast<size_t>(kNodes));
  int min_count = kKeys, max_count = 0;
  for (const auto& [node, count] : counts) {
    min_count = std::min(min_count, count);
    max_count = std::max(max_count, count);
  }
  // Ideal share is kKeys / kNodes = 4000. With 40 vnodes the spread is
  // coarse but must stay within about a factor of two of ideal.
  EXPECT_GT(min_count, kKeys / (2 * kNodes));
  EXPECT_LT(max_count, 2 * kKeys / kNodes);
}

// Consistent hashing's defining property: adding a node moves ~1/N of
// the keys (those it now owns) and no others.
TEST(HashRingTest, AddNodeMovesAboutOneNthOfKeys) {
  HashRing ring;
  const int kBefore = 4;
  for (int n = 0; n < kBefore; ++n) {
    ASSERT_TRUE(ring.AddNode("edge-" + std::to_string(n), 40).ok());
  }
  const int kKeys = 10000;
  std::map<std::string, std::string> before;
  for (int i = 0; i < kKeys; ++i) {
    std::string key = "k:" + std::to_string(i);
    before[key] = *ring.Route(key);
  }
  ASSERT_TRUE(ring.AddNode("edge-new", 40).ok());
  int moved = 0;
  for (const auto& [key, node] : before) {
    std::string now = *ring.Route(key);
    if (now != node) {
      // A key only ever moves *to* the new node, never between old ones.
      EXPECT_EQ(now, "edge-new") << key;
      ++moved;
    }
  }
  // Ideal is kKeys / 5 = 2000; allow generous slack for 40-vnode noise.
  EXPECT_GT(moved, kKeys / 10);
  EXPECT_LT(moved, 2 * kKeys / 5);
}

// Failover determinism: routing with a node marked down is *identical*
// to routing on a ring that never contained the node. Owners computed by
// any healthy peer therefore agree during the failure, whether or not
// that peer ever saw the dead node.
TEST(HashRingTest, MarkDownEquivalentToAbsentNode) {
  HashRing with_down, without;
  for (const char* node : {"a", "b", "c"}) {
    ASSERT_TRUE(with_down.AddNode(node, 40).ok());
  }
  ASSERT_TRUE(without.AddNode("a", 40).ok());
  ASSERT_TRUE(without.AddNode("c", 40).ok());
  ASSERT_TRUE(with_down.MarkDown("b").ok());
  for (int i = 0; i < 2000; ++i) {
    std::string key = "k:" + std::to_string(i);
    EXPECT_EQ(*with_down.Route(key), *without.Route(key)) << key;
  }
}

TEST(HashRingTest, MarkUnknownNodeFails) {
  HashRing ring;
  EXPECT_TRUE(ring.MarkDown("ghost").IsNotFound());
  EXPECT_TRUE(ring.MarkUp("ghost").IsNotFound());
}

TEST(HashRingTest, RemoveNodeRebalances) {
  HashRing ring;
  ASSERT_TRUE(ring.AddNode("a").ok());
  ASSERT_TRUE(ring.AddNode("b").ok());
  ASSERT_TRUE(ring.RemoveNode("a").ok());
  EXPECT_EQ(*ring.Route("anything"), "b");
  EXPECT_TRUE(ring.RemoveNode("a").IsNotFound());
  EXPECT_EQ(ring.node_count(), 1u);
}

TEST(HashRingTest, RemovalOnlyMovesAffectedKeys) {
  HashRing ring;
  for (const char* node : {"a", "b", "c"}) {
    ASSERT_TRUE(ring.AddNode(node, 64).ok());
  }
  std::map<std::string, std::string> before;
  for (int i = 0; i < 500; ++i) {
    std::string key = "k" + std::to_string(i);
    before[key] = *ring.Route(key);
  }
  ASSERT_TRUE(ring.RemoveNode("c").ok());
  for (const auto& [key, node] : before) {
    if (node != "c") {
      // Consistent hashing: keys not on the removed node stay put.
      EXPECT_EQ(*ring.Route(key), node) << key;
    } else {
      EXPECT_NE(*ring.Route(key), "c");
    }
  }
}

TEST(Fnv1aTest, KnownPropertiesHold) {
  EXPECT_NE(Fnv1a("a"), Fnv1a("b"));
  EXPECT_EQ(Fnv1a("same"), Fnv1a("same"));
  EXPECT_EQ(Fnv1a(""), 0xCBF29CE484222325ULL);
}

TEST(RingPointTest, VnodesOfOneNodeSpreadAcrossTheRing) {
  // Raw FNV clusters "node#0".."node#63" (only low bits differ); the
  // splitmix finalizer must spread them. Check the top 3 bits cover most
  // octants.
  std::set<uint64_t> octants;
  for (int i = 0; i < 64; ++i) {
    octants.insert(RingPoint("node#" + std::to_string(i)) >> 61);
  }
  EXPECT_GE(octants.size(), 7u);

  // And that raw FNV indeed clusters (the motivation for the finalizer).
  std::set<uint64_t> raw_octants;
  for (int i = 0; i < 64; ++i) {
    raw_octants.insert(Fnv1a("node#" + std::to_string(i)) >> 61);
  }
  EXPECT_LE(raw_octants.size(), 2u);
}

}  // namespace
}  // namespace dynaprox::edge
