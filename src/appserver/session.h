#ifndef DYNAPROX_APPSERVER_SESSION_H_
#define DYNAPROX_APPSERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/result.h"
#include "http/message.h"

namespace dynaprox::appserver {

// Minimal session layer: maps opaque session tokens to registered user ids.
// A request carries its token in the "sid" query parameter or a
// "Cookie: sid=<token>" header. Anonymous requests (no/unknown token)
// resolve to std::nullopt — the paper's "non-registered user" case.
// Thread-safe.
class SessionManager {
 public:
  // Opens a session for `user_id` and returns its token.
  std::string Login(const std::string& user_id);

  // Ends a session; unknown tokens are ignored.
  void Logout(const std::string& token);

  // Resolves the requesting user, if any.
  std::optional<std::string> ResolveUser(const http::Request& request) const;

  size_t active_sessions() const;

 private:
  static std::optional<std::string> TokenFromRequest(
      const http::Request& request);

  mutable std::mutex mu_;
  uint64_t next_token_ = 1;
  std::map<std::string, std::string> sessions_;  // token -> user id.
};

}  // namespace dynaprox::appserver

#endif  // DYNAPROX_APPSERVER_SESSION_H_
