#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

namespace dynaprox::net {
namespace {

http::Response EchoHandler(const http::Request& request) {
  return http::Response::MakeOk("path=" + std::string(request.Path()) +
                                ";body=" + request.body);
}

TEST(TcpTest, RoundTripOverLoopback) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  TcpClientTransport client("127.0.0.1", server.port());
  http::Request request;
  request.method = "POST";
  request.target = "/hello";
  request.body = "payload";
  Result<http::Response> response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->body, "path=/hello;body=payload");
  server.Stop();
}

TEST(TcpTest, KeepAliveServesManyRequestsOnOneConnection) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport client("127.0.0.1", server.port());
  for (int i = 0; i < 20; ++i) {
    http::Request request;
    request.target = "/r" + std::to_string(i);
    Result<http::Response> response = client.RoundTrip(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->body, "path=/r" + std::to_string(i) + ";body=");
  }
  server.Stop();
}

TEST(TcpTest, MultipleConcurrentClients) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport a("127.0.0.1", server.port());
  TcpClientTransport b("127.0.0.1", server.port());
  http::Request request;
  request.target = "/both";
  EXPECT_TRUE(a.RoundTrip(request).ok());
  EXPECT_TRUE(b.RoundTrip(request).ok());
  EXPECT_TRUE(a.RoundTrip(request).ok());
  server.Stop();
}

TEST(TcpTest, LargeBodyTransfers) {
  TcpServer server([](const http::Request& request) {
    return http::Response::MakeOk(std::string(256 * 1024, 'z') +
                                  request.body);
  });
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport client("127.0.0.1", server.port());
  http::Request request;
  request.body = std::string(64 * 1024, 'q');
  Result<http::Response> response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body.size(), 256u * 1024 + 64 * 1024);
  server.Stop();
}

TEST(TcpTest, ConnectToClosedPortFails) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();
  server.Stop();
  TcpClientTransport client("127.0.0.1", port);
  http::Request request;
  EXPECT_FALSE(client.RoundTrip(request).ok());
}

TEST(TcpTest, ReceiveTimeoutFailsFast) {
  // A listener that accepts but never responds.
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);

  TcpClientOptions options;
  options.io_timeout_micros = 100 * kMicrosPerMilli;  // 100ms.
  TcpClientTransport client("127.0.0.1", ntohs(addr.sin_port), options);
  http::Request request;
  Result<http::Response> response = client.RoundTrip(request);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
  ::close(listen_fd);
}

TEST(TcpTest, StopIsIdempotent) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();
}

}  // namespace
}  // namespace dynaprox::net
