// Ablation: cross-page fragment sharing. The Section 5 model allows a
// many-to-many page<->fragment mapping ("a fragment can be associated with
// many pages") but the closed forms assume per-page fragments. This sweep
// shrinks the shared fragment pool and measures the origin-link bytes: a
// smaller pool means one page's miss warms other pages, so fewer distinct
// fragments carry the whole site.

#include <cstdio>
#include <memory>

#include "analytical/model.h"
#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "bench_util.h"
#include "dpc/proxy.h"
#include "net/byte_meter.h"
#include "net/transport.h"
#include "storage/table.h"
#include "workload/driver.h"
#include "workload/request_stream.h"
#include "workload/synthetic_site.h"

using namespace dynaprox;

namespace {

struct PoolResult {
  double realized_hit_ratio = 0;
  uint64_t payload_bytes = 0;
};

Result<PoolResult> RunPool(const analytical::ModelParams& params,
                           int pool) {
  storage::ContentRepository repository;
  appserver::ScriptRegistry registry;
  workload::SyntheticSiteOptions site_options;
  site_options.fragment_pool = pool;
  workload::SyntheticSite site(params, 7, &repository, &registry,
                               site_options);

  bem::BemOptions bem_options;
  bem_options.capacity = 2048;
  std::unique_ptr<bem::BackEndMonitor> monitor;
  DYNAPROX_ASSIGN_OR_RETURN(monitor,
                            bem::BackEndMonitor::Create(bem_options));
  monitor->AttachRepository(&repository);
  appserver::OriginOptions origin_options;
  origin_options.pad_headers_to_bytes =
      static_cast<size_t>(params.header_size);
  appserver::OriginServer origin(&registry, &repository, monitor.get(),
                                 origin_options);
  net::ByteMeter meter{net::ProtocolModel::PayloadOnly()};
  net::MeteredTransport link(
      std::make_unique<net::DirectTransport>(origin.AsHandler()), nullptr,
      &meter);
  dpc::ProxyOptions proxy_options;
  proxy_options.capacity = 2048;
  dpc::DpcProxy proxy(&link, proxy_options);
  net::DirectTransport client(proxy.AsHandler());

  // Measure from COLD: sharing pays off exactly when fragments have not
  // been fetched yet — one page's first miss warms every page that shares
  // the slot. (In steady state with a fixed hit ratio the pool size is
  // invisible by construction.)
  workload::RequestStream stream(params.num_pages, params.zipf_alpha, 11);
  workload::DriverStats driven = workload::RunWorkload(client, stream, 2000);
  if (driven.error_responses + driven.transport_errors > 0) {
    return Status::Internal("workload failures");
  }
  bem::DirectoryStats stats = monitor->stats();
  PoolResult out;
  out.realized_hit_ratio = stats.HitRatio();
  out.payload_bytes = meter.payload_bytes();
  return out;
}

}  // namespace

int main() {
  analytical::ModelParams params =
      analytical::ModelParams::Table2Baseline();
  params.cacheability = 1.0;  // Sharing semantics are cleanest when every
                              // position is cacheable.
  params.hit_ratio = 1.0;     // No synthetic churn: pure cold-start cost.
  params.num_pages = 100;     // Enough pages that the Zipf tail stays cold
                              // for a while.
  benchutil::PrintHeader(
      "Ablation",
      "Cross-page fragment sharing (pool size sweep, cold start)", params);

  int total_positions = params.num_pages * params.fragments_per_page;
  std::printf("%12s %14s %16s %14s\n", "pool", "realized h",
              "payloadBytes", "savings(%)");
  double no_cache = 2000.0 * analytical::ResponseSizeNoCache(params);
  for (int pool : {0, 200, 100, 40, 10}) {
    Result<PoolResult> result = RunPool(params, pool);
    if (!result.ok()) {
      std::printf("pool %d failed: %s\n", pool,
                  result.status().ToString().c_str());
      return 1;
    }
    std::string label = pool == 0 ? "per-page" : std::to_string(pool);
    std::printf("%12s %14.4f %16llu %14.2f\n", label.c_str(),
                result->realized_hit_ratio,
                static_cast<unsigned long long>(result->payload_bytes),
                (no_cache - static_cast<double>(result->payload_bytes)) /
                    no_cache * 100.0);
  }
  std::printf("total fragment positions: %d; smaller pools mean more "
              "cross-page reuse: misses amortize across pages, raising "
              "savings toward the h=1 ceiling\n",
              total_positions);
  benchutil::PrintFooter();
  return 0;
}
