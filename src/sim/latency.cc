#include "sim/latency.h"

#include <cmath>

namespace dynaprox::sim {
namespace {

double TransferMs(double bytes, double bytes_per_ms) {
  return bytes_per_ms <= 0 ? 0 : bytes / bytes_per_ms;
}

double ScanMs(const LatencyParams& latency, double bytes) {
  return bytes / 1000.0 * latency.scan_ms_per_kilobyte;
}

// Latency shared by both configurations: WAN/LAN round trips and the WAN
// delivery of the final (always full-size) page.
double CommonMs(const LatencyParams& latency,
                const analytical::ModelParams& params) {
  double page_bytes = analytical::ResponseSizeNoCache(params);
  return latency.wan_rtt_ms + latency.lan_rtt_ms +
         latency.script_overhead_ms +
         TransferMs(page_bytes, latency.wan_bytes_per_ms);
}

double Exponential(Rng& rng, double mean) {
  double u = rng.NextDouble();
  return -mean * std::log1p(-u);
}

}  // namespace

double ExpectedResponseTimeNoCacheMs(const LatencyParams& latency,
                                     const analytical::ModelParams& params) {
  double page_bytes = analytical::ResponseSizeNoCache(params);
  return CommonMs(latency, params) +
         params.fragments_per_page * latency.fragment_generation_ms +
         TransferMs(page_bytes, latency.lan_bytes_per_ms) +
         ScanMs(latency, page_bytes);
}

double ExpectedResponseTimeWithCacheMs(
    const LatencyParams& latency, const analytical::ModelParams& params) {
  double template_bytes = analytical::ResponseSizeWithCache(params);
  double per_fragment_generation =
      params.cacheability * (params.hit_ratio * latency.fragment_tag_emit_ms +
                             (1 - params.hit_ratio) *
                                 latency.fragment_generation_ms) +
      (1 - params.cacheability) * latency.fragment_generation_ms;
  return CommonMs(latency, params) +
         params.fragments_per_page *
             (per_fragment_generation + latency.assembly_ms_per_fragment) +
         TransferMs(template_bytes, latency.lan_bytes_per_ms) +
         // Scanned twice: firewall + DPC template scan (z ~= y).
         2.0 * ScanMs(latency, template_bytes);
}

double ExpectedSpeedup(const LatencyParams& latency,
                       const analytical::ModelParams& params) {
  return ExpectedResponseTimeNoCacheMs(latency, params) /
         ExpectedResponseTimeWithCacheMs(latency, params);
}

namespace {

// The sampling loop behind both SampleResponseTimes variants; `record`
// receives (no_cache_ms, with_cache_ms) per simulated request.
template <typename RecordFn>
void SampleResponseTimesImpl(const LatencyParams& latency,
                             const analytical::ModelParams& params,
                             int requests, uint64_t seed,
                             RecordFn&& record) {
  Rng rng(seed);
  analytical::SiteSpec site = analytical::SiteSpec::Uniform(params);
  double common = CommonMs(latency, params);

  for (int i = 0; i < requests; ++i) {
    const analytical::PageSpec& page =
        site.pages[static_cast<size_t>(i) % site.pages.size()];

    auto generation_ms = [&]() {
      return latency.stochastic
                 ? Exponential(rng, latency.fragment_generation_ms)
                 : latency.fragment_generation_ms;
    };

    // No-cache request: every fragment generated, full page on the LAN.
    double page_bytes = analytical::PageSizeNoCache(page, site);
    double no_cache = common + TransferMs(page_bytes, latency.lan_bytes_per_ms) +
                      ScanMs(latency, page_bytes);
    // Cached request: cacheable fragments hit with probability h.
    double template_bytes = site.header_size;
    double with_cache =
        common + params.fragments_per_page * latency.assembly_ms_per_fragment;
    for (const analytical::FragmentSpec& fragment : page.fragments) {
      double gen = generation_ms();
      no_cache += gen;
      if (fragment.cacheable && rng.NextBool(params.hit_ratio)) {
        with_cache += latency.fragment_tag_emit_ms;
        template_bytes += site.tag_size;
      } else {
        with_cache += fragment.cacheable ? generation_ms() : gen;
        template_bytes += fragment.size +
                          (fragment.cacheable ? 2 * site.tag_size : 0);
      }
    }
    with_cache += TransferMs(template_bytes, latency.lan_bytes_per_ms) +
                  2.0 * ScanMs(latency, template_bytes);

    record(no_cache, with_cache);
  }
}

}  // namespace

LatencyDistributions SampleResponseTimes(
    const LatencyParams& latency, const analytical::ModelParams& params,
    int requests, uint64_t seed) {
  LatencyDistributions out;
  SampleResponseTimesImpl(latency, params, requests, seed,
                          [&out](double no_cache, double with_cache) {
                            out.no_cache_ms.Record(no_cache);
                            out.with_cache_ms.Record(with_cache);
                          });
  return out;
}

void SampleResponseTimesInto(const LatencyParams& latency,
                             const analytical::ModelParams& params,
                             int requests, uint64_t seed,
                             metrics::LatencyHistogram* no_cache_ms,
                             metrics::LatencyHistogram* with_cache_ms) {
  SampleResponseTimesImpl(
      latency, params, requests, seed,
      [no_cache_ms, with_cache_ms](double no_cache, double with_cache) {
        if (no_cache_ms != nullptr) no_cache_ms->Observe(no_cache);
        if (with_cache_ms != nullptr) with_cache_ms->Observe(with_cache);
      });
}

}  // namespace dynaprox::sim
