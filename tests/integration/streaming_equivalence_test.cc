// Streaming scan-and-splice equivalence, full stack over real sockets:
// the same appserver workload fetched through a buffered DPC and a
// streaming DPC must produce byte-identical pages on every request —
// warm, cold, and after the proxy cache is wiped mid-workload (the
// inline recovery path). Each proxy gets its own origin stack (own BEM
// monitor) so the SET/GET handshakes are symmetric and the comparison
// is apples to apples.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "common/clock.h"
#include "dpc/proxy.h"
#include "net/connection_pool.h"
#include "net/tcp.h"
#include "storage/table.h"
#include "storage/value.h"

namespace dynaprox {
namespace {

// One complete serving chain: origin(+BEM) -> TcpServer -> pooled
// upstream -> DpcProxy -> front TcpServer -> buffered client.
struct Stack {
  Stack(appserver::ScriptRegistry* registry,
        storage::ContentRepository* repository, SimClock* clock,
        bool streaming) {
    bem::BemOptions bem_options;
    bem_options.capacity = 64;
    bem_options.clock = clock;
    monitor = *bem::BackEndMonitor::Create(bem_options);
    monitor->AttachRepository(repository);
    origin = std::make_unique<appserver::OriginServer>(registry, repository,
                                                       monitor.get());
    origin_server = std::make_unique<net::TcpServer>(origin->AsHandler());
    if (!origin_server->Start().ok()) abort();
    net::PooledTransportOptions pool_options;
    pool_options.pool.max_connections = 2;
    upstream = std::make_unique<net::PooledClientTransport>(
        "127.0.0.1", origin_server->port(), pool_options);
    dpc::ProxyOptions proxy_options;
    proxy_options.capacity = 64;
    proxy_options.streaming = streaming;
    proxy = std::make_unique<dpc::DpcProxy>(upstream.get(), proxy_options);
    front = std::make_unique<net::TcpServer>(proxy->AsHandler());
    if (!front->Start().ok()) abort();
    client = std::make_unique<net::TcpClientTransport>("127.0.0.1",
                                                       front->port());
  }

  ~Stack() {
    front->Stop();
    origin_server->Stop();
  }

  std::string Fetch(const std::string& target) {
    http::Request request;
    request.target = target;
    Result<http::Response> response = client->RoundTrip(request);
    if (!response.ok()) return "<transport error>";
    return std::string(response->body);
  }

  std::unique_ptr<bem::BackEndMonitor> monitor;
  std::unique_ptr<appserver::OriginServer> origin;
  std::unique_ptr<net::TcpServer> origin_server;
  std::unique_ptr<net::PooledClientTransport> upstream;
  std::unique_ptr<dpc::DpcProxy> proxy;
  std::unique_ptr<net::TcpServer> front;
  std::unique_ptr<net::TcpClientTransport> client;
};

class StreamingEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::Table* news = repository_.GetOrCreateTable("news");
    news->Upsert("n1", {{"text", storage::Value(std::string(
                                     "Streaming ships today"))}});

    // Three pages sharing fragments: "headlines" appears on two of them,
    // and /big pads its layout past one socket read so the streaming
    // proxy genuinely flushes head bytes before the template ends.
    registry_.RegisterOrReplace(
        "/home", [](appserver::ScriptContext& context) {
          context.Emit("<html><h1>Home</h1>");
          Status status = context.CacheableBlock(
              bem::FragmentId("headlines"),
              [](appserver::ScriptContext& ctx) {
                auto news_table = ctx.repository()->GetTable("news");
                storage::Row row = *(*news_table)->Get("n1");
                ctx.DeclareDependency("news");
                ctx.Emit("<ul><li>" + storage::GetString(row, "text") +
                         "</li></ul>");
                return Status::Ok();
              });
          if (!status.ok()) return status;
          status = context.CacheableBlock(
              bem::FragmentId("promo"), [](appserver::ScriptContext& ctx) {
                ctx.Emit("<p>Deal of the day</p>");
                return Status::Ok();
              });
          if (!status.ok()) return status;
          context.Emit("</html>");
          return Status::Ok();
        });
    registry_.RegisterOrReplace(
        "/news", [](appserver::ScriptContext& context) {
          context.Emit("<html><h1>News</h1>");
          Status status = context.CacheableBlock(
              bem::FragmentId("headlines"),
              [](appserver::ScriptContext& ctx) {
                auto news_table = ctx.repository()->GetTable("news");
                storage::Row row = *(*news_table)->Get("n1");
                ctx.DeclareDependency("news");
                ctx.Emit("<ul><li>" + storage::GetString(row, "text") +
                         "</li></ul>");
                return Status::Ok();
              });
          if (!status.ok()) return status;
          context.Emit("<footer>fin</footer></html>");
          return Status::Ok();
        });
    registry_.RegisterOrReplace(
        "/big", [](appserver::ScriptContext& context) {
          context.Emit("<html>" + std::string(32 * 1024, 'b'));
          Status status = context.CacheableBlock(
              bem::FragmentId("promo"), [](appserver::ScriptContext& ctx) {
                ctx.Emit("<p>Deal of the day</p>");
                return Status::Ok();
              });
          if (!status.ok()) return status;
          context.Emit(std::string(32 * 1024, 'e') + "</html>");
          return Status::Ok();
        });

    buffered_ = std::make_unique<Stack>(&registry_, &repository_, &clock_,
                                        /*streaming=*/false);
    streaming_ = std::make_unique<Stack>(&registry_, &repository_, &clock_,
                                         /*streaming=*/true);
  }

  void ExpectWorkloadIdentical(const char* label) {
    for (int round = 0; round < 2; ++round) {
      for (const std::string& target : {std::string("/home"),
                                        std::string("/news"),
                                        std::string("/big")}) {
        std::string expected = buffered_->Fetch(target);
        ASSERT_NE(expected, "<transport error>") << label << " " << target;
        EXPECT_EQ(streaming_->Fetch(target), expected)
            << label << " round=" << round << " target=" << target;
      }
    }
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<Stack> buffered_;
  std::unique_ptr<Stack> streaming_;
};

TEST_F(StreamingEquivalenceTest, WorkloadIsByteIdenticalAcrossPaths) {
  ExpectWorkloadIdentical("warm-up");

  // Steady state: templates are GET-heavy now, and the streaming proxy
  // has been committing streams (the big page cannot fit one read).
  EXPECT_GE(streaming_->proxy->stats().streamed, 1u);
  EXPECT_EQ(streaming_->proxy->stats().stream_aborts, 0u);

  // Wipe the streaming proxy's fragment cache only: its origin still
  // sends GET-style templates, so every fragment is a cold miss that has
  // to be recovered inline — mid-stream for the big page — and the pages
  // must STILL match the buffered proxy byte for byte.
  streaming_->proxy->ClearCache();
  ExpectWorkloadIdentical("post-clear");
  EXPECT_GE(streaming_->proxy->stats().recoveries, 1u);
  EXPECT_EQ(streaming_->proxy->stats().stream_aborts, 0u);
}

TEST_F(StreamingEquivalenceTest, ContentUpdatePropagatesToBothPaths) {
  ExpectWorkloadIdentical("initial");

  // An origin-side content change rides the repository update bus into
  // both BEM monitors, invalidating the shared "headlines" fragment; both
  // paths must converge on the new bytes, not serve stale cache.
  storage::Table* news = *repository_.GetTable("news");
  news->Upsert("n1", {{"text", storage::Value(std::string(
                                   "Second edition headline"))}});

  std::string home = buffered_->Fetch("/home");
  EXPECT_NE(home.find("Second edition headline"), std::string::npos);
  EXPECT_EQ(streaming_->Fetch("/home"), home);
  ExpectWorkloadIdentical("post-update");
}

}  // namespace
}  // namespace dynaprox
