#ifndef DYNAPROX_WORKLOAD_REQUEST_STREAM_H_
#define DYNAPROX_WORKLOAD_REQUEST_STREAM_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "http/message.h"

namespace dynaprox::workload {

// Generates the client request stream of the Section 5/6 setup: page
// popularity follows a Zipf distribution (the paper cites the classic
// web-trace characterizations [2, 12]). This is the reproduction's
// WebLoad stand-in.
class RequestStream {
 public:
  // Requests hit `path`?id=<rank> where rank is Zipf(`alpha`)-distributed
  // over [0, num_pages).
  RequestStream(int num_pages, double alpha, uint64_t seed,
                std::string path = "/page");

  // Draws the next request.
  http::Request Next();

  // Deterministic request for a specific page (warmup, tests).
  http::Request ForPage(int page) const;

  uint64_t generated() const { return generated_; }

 private:
  std::string path_;
  ZipfSampler sampler_;
  Rng rng_;
  uint64_t generated_ = 0;
};

}  // namespace dynaprox::workload

#endif  // DYNAPROX_WORKLOAD_REQUEST_STREAM_H_
