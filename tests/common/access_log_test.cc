#include "common/access_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

namespace dynaprox {
namespace {

TEST(RequestIdGeneratorTest, FixedPrefixIsDeterministic) {
  RequestIdGenerator ids(0xabcd);
  EXPECT_EQ(ids.Next(), "abcd-1");
  EXPECT_EQ(ids.Next(), "abcd-2");
}

TEST(RequestIdGeneratorTest, DefaultPrefixDiffersAcrossGenerators) {
  RequestIdGenerator a;
  RequestIdGenerator b;
  std::string id_a = a.Next();
  std::string id_b = b.Next();
  EXPECT_NE(id_a.substr(0, id_a.find('-')),
            id_b.substr(0, id_b.find('-')));
}

TEST(RequestIdGeneratorTest, ConcurrentNextNeverRepeats) {
  RequestIdGenerator ids(1);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<std::string>> minted(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) minted[t].push_back(ids.Next());
    });
  }
  for (std::thread& worker : workers) worker.join();
  std::set<std::string> unique;
  for (const auto& batch : minted) unique.insert(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(),
            static_cast<size_t>(kThreads) * kPerThread);
}

TEST(AccessLoggerTest, WritesOneJsonLinePerEntry) {
  std::ostringstream out;
  AccessLogger logger(&out);
  AccessLogEntry entry;
  entry.timestamp_micros = 1722902400000000;
  entry.component = "dpc";
  entry.request_id = "abcd-1";
  entry.method = "GET";
  entry.target = "/page?id=3";
  entry.status = 200;
  entry.bytes_sent = 4096;
  entry.duration_micros = 1250;
  entry.outcome = "assembled";
  logger.Log(entry);
  EXPECT_EQ(out.str(),
            "{\"ts_us\":1722902400000000,\"component\":\"dpc\","
            "\"id\":\"abcd-1\",\"method\":\"GET\",\"path\":\"/page?id=3\","
            "\"status\":200,\"bytes\":4096,\"duration_us\":1250,"
            "\"outcome\":\"assembled\"}\n");
}

TEST(AccessLoggerTest, ConcurrentLogLinesNeverInterleave) {
  std::ostringstream out;
  AccessLogger logger(&out);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      AccessLogEntry entry;
      entry.component = "dpc";
      entry.request_id = "t" + std::to_string(t);
      entry.method = "GET";
      entry.target = "/x";
      entry.outcome = "assembled";
      for (int i = 0; i < kPerThread; ++i) logger.Log(entry);
    });
  }
  for (std::thread& worker : workers) worker.join();
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_EQ(count, kThreads * kPerThread);
}

TEST(AccessLoggerTest, OpenAppendsToFile) {
  std::string path = ::testing::TempDir() + "/dynaprox_access_log_test.log";
  std::remove(path.c_str());
  AccessLogEntry entry;
  entry.component = "origin";
  entry.method = "GET";
  entry.target = "/a";
  entry.outcome = "page";
  {
    Result<std::unique_ptr<AccessLogger>> logger = AccessLogger::Open(path);
    ASSERT_TRUE(logger.ok()) << logger.status().ToString();
    (*logger)->Log(entry);
  }
  {
    // A second open must append, not truncate.
    Result<std::unique_ptr<AccessLogger>> logger = AccessLogger::Open(path);
    ASSERT_TRUE(logger.ok()) << logger.status().ToString();
    (*logger)->Log(entry);
  }
  std::ifstream in(path);
  int count = 0;
  std::string line;
  while (std::getline(in, line)) ++count;
  EXPECT_EQ(count, 2);
  std::remove(path.c_str());
}

TEST(AccessLoggerTest, OpenFailsOnUnwritablePath) {
  Result<std::unique_ptr<AccessLogger>> logger =
      AccessLogger::Open("/nonexistent-dir/x/y/z.log");
  EXPECT_FALSE(logger.ok());
}

}  // namespace
}  // namespace dynaprox
