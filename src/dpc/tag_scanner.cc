#include "dpc/tag_scanner.h"

#include <cstring>

#include "bem/tag_codec.h"
#include "common/strings.h"

namespace dynaprox::dpc {
namespace {

constexpr char kStx = bem::TagCodec::kStx;
constexpr char kEtx = bem::TagCodec::kEtx;

size_t FindMarker(std::string_view text, size_t from, ScanStrategy strategy) {
  if (from >= text.size()) return std::string_view::npos;
  switch (strategy) {
    case ScanStrategy::kMemchr: {
      const void* p =
          std::memchr(text.data() + from, kStx, text.size() - from);
      if (p == nullptr) return std::string_view::npos;
      return static_cast<size_t>(static_cast<const char*>(p) - text.data());
    }
    case ScanStrategy::kByteLoop: {
      for (size_t i = from; i < text.size(); ++i) {
        if (text[i] == kStx) return i;
      }
      return std::string_view::npos;
    }
  }
  return std::string_view::npos;
}

// Key validation shared by the buffered and streaming scanners. The hex
// run must be 1..kMaxKeyHexDigits digits and must not name
// bem::kInvalidDpcKey: that value is the scanner's own "no key" sentinel
// and the fragment store rejects it, so a template carrying it is corrupt
// rather than merely cold.
Status DecodeKey(std::string_view hex, bem::DpcKey& key) {
  if (hex.empty()) return Status::Corruption("empty dpcKey in tag");
  if (hex.size() > kMaxKeyHexDigits) {
    return Status::Corruption("oversized dpcKey in tag");
  }
  Result<uint64_t> parsed = ParseHex(hex);
  if (!parsed.ok() || *parsed >= bem::kInvalidDpcKey) {
    return Status::Corruption("bad dpcKey in tag");
  }
  key = static_cast<bem::DpcKey>(*parsed);
  return Status::Ok();
}

// Parses the hex key of an 'S'/'G' tag starting at `hex_begin`; on success
// sets `key`/`tag_end` (index one past the closing ETX).
Status ParseKeyTag(std::string_view wire, size_t hex_begin,
                   bem::DpcKey& key, size_t& tag_end) {
  size_t etx = wire.find(kEtx, hex_begin);
  if (etx == std::string_view::npos) {
    return Status::Corruption("unterminated tag (missing ETX)");
  }
  DYNAPROX_RETURN_IF_ERROR(
      DecodeKey(wire.substr(hex_begin, etx - hex_begin), key));
  tag_end = etx + 1;
  return Status::Ok();
}

bool IsHexDigit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

// The one-byte payload a literal-escape tag emits. A streamed escape may
// resolve after its chunk is gone, so the emitted STX aliases this
// immortal buffer instead of the wire.
const common::Buffer& StxBuffer() {
  static const common::Buffer buffer =
      common::MakeBuffer(std::string(1, kStx));
  return buffer;
}

}  // namespace

Result<std::vector<TemplateSegment>> ParseTemplate(std::string_view wire,
                                                   ScanStrategy strategy) {
  std::vector<TemplateSegment> segments;
  // Views accumulating the current literal run or SET payload. Adjacent
  // wire ranges merge, so a template without escapes yields exactly one
  // piece per segment.
  std::vector<std::string_view> pieces;
  bool inside_set = false;
  bem::DpcKey set_key = bem::kInvalidDpcKey;

  auto add_piece = [&](std::string_view piece) {
    if (piece.empty()) return;
    if (!pieces.empty() &&
        pieces.back().data() + pieces.back().size() == piece.data()) {
      pieces.back() = std::string_view(pieces.back().data(),
                                       pieces.back().size() + piece.size());
      return;
    }
    pieces.push_back(piece);
  };

  auto flush_literal = [&]() {
    if (pieces.empty()) return;
    segments.push_back({TemplateSegment::Kind::kLiteral, bem::kInvalidDpcKey,
                        std::move(pieces)});
    pieces.clear();
  };

  size_t pos = 0;
  for (;;) {
    size_t stx = FindMarker(wire, pos, strategy);
    if (stx == std::string_view::npos) {
      add_piece(wire.substr(pos));
      break;
    }
    add_piece(wire.substr(pos, stx - pos));
    if (stx + 1 >= wire.size()) {
      return Status::Corruption("truncated tag at end of template");
    }
    char marker = wire[stx + 1];
    switch (marker) {
      case 'L': {
        if (stx + 2 >= wire.size() || wire[stx + 2] != kEtx) {
          return Status::Corruption("malformed literal-escape tag");
        }
        // The escape emits one STX byte — which is the tag's own leading
        // byte, so the emitted byte aliases the wire too.
        add_piece(wire.substr(stx, 1));
        pos = stx + 3;
        break;
      }
      case 'S': {
        if (inside_set) return Status::Corruption("nested SET tag");
        size_t tag_end = 0;
        DYNAPROX_RETURN_IF_ERROR(
            ParseKeyTag(wire, stx + 2, set_key, tag_end));
        flush_literal();
        inside_set = true;
        pos = tag_end;
        break;
      }
      case 'E': {
        if (!inside_set) return Status::Corruption("SET-end without SET");
        if (stx + 2 >= wire.size() || wire[stx + 2] != kEtx) {
          return Status::Corruption("malformed SET-end tag");
        }
        segments.push_back(
            {TemplateSegment::Kind::kSet, set_key, std::move(pieces)});
        pieces.clear();
        inside_set = false;
        set_key = bem::kInvalidDpcKey;
        pos = stx + 3;
        break;
      }
      case 'G': {
        if (inside_set) return Status::Corruption("GET tag inside SET");
        bem::DpcKey key = bem::kInvalidDpcKey;
        size_t tag_end = 0;
        DYNAPROX_RETURN_IF_ERROR(ParseKeyTag(wire, stx + 2, key, tag_end));
        flush_literal();
        segments.push_back({TemplateSegment::Kind::kGet, key, {}});
        pos = tag_end;
        break;
      }
      default:
        return Status::Corruption(std::string("unknown tag marker '") +
                                  marker + "'");
    }
  }

  if (inside_set) return Status::Corruption("unterminated SET block");
  flush_literal();
  return segments;
}

Status StreamingScanner::Fail(Status status) {
  state_ = State::kFailed;
  failure_ = status;
  pieces_.clear();
  pieces_bytes_ = 0;
  tag_.clear();
  return failure_;
}

void StreamingScanner::AddPiece(const common::Buffer& owner,
                                std::string_view piece) {
  if (piece.empty()) return;
  pieces_bytes_ += piece.size();
  if (!pieces_.empty()) {
    StreamPiece& last = pieces_.back();
    if (last.owner == owner &&
        last.view.data() + last.view.size() == piece.data()) {
      last.view =
          std::string_view(last.view.data(), last.view.size() + piece.size());
      return;
    }
  }
  pieces_.push_back({owner, piece});
}

void StreamingScanner::FlushLiteral(std::vector<StreamSegment>& out) {
  if (pieces_.empty()) return;
  StreamSegment segment;
  segment.kind = TemplateSegment::Kind::kLiteral;
  segment.pieces = std::move(pieces_);
  pieces_.clear();
  pieces_bytes_ = 0;
  out.push_back(std::move(segment));
}

Status StreamingScanner::StepTag(std::vector<StreamSegment>& out) {
  const char marker = tag_[1];
  const char last = tag_.back();
  if (tag_.size() == 2) {
    // Marker byte just arrived: structural errors that don't depend on
    // the rest of the tag are rejected here, before any more input.
    switch (marker) {
      case 'L':
        return Status::Ok();
      case 'E':
        if (!inside_set_) return Fail(Status::Corruption("SET-end without SET"));
        return Status::Ok();
      case 'S':
        if (inside_set_) return Fail(Status::Corruption("nested SET tag"));
        return Status::Ok();
      case 'G':
        if (inside_set_) return Fail(Status::Corruption("GET tag inside SET"));
        return Status::Ok();
      default:
        return Fail(Status::Corruption(std::string("unknown tag marker '") +
                                       marker + "'"));
    }
  }
  switch (marker) {
    case 'L': {
      if (last != kEtx) {
        return Fail(Status::Corruption("malformed literal-escape tag"));
      }
      AddPiece(StxBuffer(), std::string_view(StxBuffer()->data(), 1));
      break;
    }
    case 'E': {
      if (last != kEtx) {
        return Fail(Status::Corruption("malformed SET-end tag"));
      }
      StreamSegment segment;
      segment.kind = TemplateSegment::Kind::kSet;
      segment.key = set_key_;
      segment.pieces = std::move(pieces_);
      pieces_.clear();
      pieces_bytes_ = 0;
      out.push_back(std::move(segment));
      inside_set_ = false;
      set_key_ = bem::kInvalidDpcKey;
      break;
    }
    case 'S':
    case 'G': {
      if (last != kEtx) {
        if (!IsHexDigit(last)) {
          return Fail(Status::Corruption("bad dpcKey in tag"));
        }
        if (tag_.size() - 2 > kMaxKeyHexDigits) {
          return Fail(Status::Corruption("oversized dpcKey in tag"));
        }
        return Status::Ok();
      }
      bem::DpcKey key = bem::kInvalidDpcKey;
      Status decoded =
          DecodeKey(std::string_view(tag_).substr(2, tag_.size() - 3), key);
      if (!decoded.ok()) return Fail(decoded);
      FlushLiteral(out);
      if (marker == 'S') {
        inside_set_ = true;
        set_key_ = key;
      } else {
        StreamSegment segment;
        segment.kind = TemplateSegment::Kind::kGet;
        segment.key = key;
        out.push_back(std::move(segment));
      }
      break;
    }
    default:
      return Fail(Status::Internal("unreachable tag marker"));
  }
  tag_.clear();
  state_ = State::kText;
  return Status::Ok();
}

Status StreamingScanner::Feed(common::Buffer owner, std::string_view bytes,
                              std::vector<StreamSegment>& out) {
  if (state_ == State::kFailed) return failure_;
  if (state_ == State::kDone) {
    return Fail(Status::Internal("StreamingScanner::Feed after Finish"));
  }
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (state_ == State::kText) {
      size_t stx = FindMarker(bytes, pos, strategy_);
      if (stx == std::string_view::npos) {
        AddPiece(owner, bytes.substr(pos));
        break;
      }
      AddPiece(owner, bytes.substr(pos, stx - pos));
      tag_.assign(1, kStx);
      state_ = State::kTag;
      pos = stx + 1;
    } else {
      // Tags are at most 2 + kMaxKeyHexDigits + 1 bytes, so the byte loop
      // here never dominates; FindMarker covers the bulk text.
      tag_.push_back(bytes[pos++]);
      DYNAPROX_RETURN_IF_ERROR(StepTag(out));
    }
  }
  // Literal text outside a tag and outside an open SET body is final:
  // flush it so the caller can put the bytes on the wire now instead of
  // holding them across the chunk boundary.
  if (state_ == State::kText && !inside_set_) FlushLiteral(out);
  return Status::Ok();
}

Status StreamingScanner::Feed(common::Buffer chunk,
                              std::vector<StreamSegment>& out) {
  std::string_view bytes = chunk == nullptr ? std::string_view() : *chunk;
  return Feed(std::move(chunk), bytes, out);
}

Status StreamingScanner::Finish(std::vector<StreamSegment>& out) {
  if (state_ == State::kFailed) return failure_;
  if (state_ == State::kDone) return Status::Ok();
  if (state_ == State::kTag) {
    return Fail(Status::Corruption("truncated tag at end of template"));
  }
  if (inside_set_) return Fail(Status::Corruption("unterminated SET block"));
  FlushLiteral(out);
  state_ = State::kDone;
  return Status::Ok();
}

}  // namespace dynaprox::dpc
