#include "appserver/origin_server.h"

#include <gtest/gtest.h>

#include "bem/protocol.h"
#include "common/clock.h"
#include "common/strings.h"

namespace dynaprox::appserver {
namespace {

class OriginServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.RegisterOrReplace("/hello", [](ScriptContext& context) {
      context.Emit("hello world");
      return Status::Ok();
    });
    registry_.RegisterOrReplace("/boom", [](ScriptContext&) {
      return Status::Internal("script exploded");
    });
    registry_.RegisterOrReplace("/cached", [](ScriptContext& context) {
      return context.CacheableBlock(bem::FragmentId("c"),
                                    [](ScriptContext& ctx) {
                                      ctx.Emit("cacheable!");
                                      return Status::Ok();
                                    });
    });
  }

  std::unique_ptr<bem::BackEndMonitor> MakeMonitor() {
    bem::BemOptions options;
    options.capacity = 8;
    options.clock = &clock_;
    return *bem::BackEndMonitor::Create(options);
  }

  http::Request Get(const std::string& target) {
    http::Request request;
    request.target = target;
    return request;
  }

  SimClock clock_;
  ScriptRegistry registry_;
  storage::ContentRepository repository_;
};

TEST_F(OriginServerTest, ServesScriptOutput) {
  OriginServer server(&registry_, &repository_, nullptr);
  http::Response response = server.Handle(Get("/hello"));
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.body, "hello world");
  EXPECT_EQ(server.stats().requests, 1u);
}

TEST_F(OriginServerTest, DispatchNormalizesPaths) {
  OriginServer server(&registry_, &repository_, nullptr);
  EXPECT_EQ(server.Handle(Get("/x/../hello")).body, "hello world");
  EXPECT_EQ(server.Handle(Get("//hello/")).body, "hello world");
  EXPECT_EQ(server.Handle(Get("/hello/./")).body, "hello world");
}

TEST_F(OriginServerTest, UnknownPathIs404) {
  OriginServer server(&registry_, &repository_, nullptr);
  EXPECT_EQ(server.Handle(Get("/nope")).status_code, 404);
  EXPECT_EQ(server.stats().not_found, 1u);
}

TEST_F(OriginServerTest, ScriptErrorIs500) {
  OriginServer server(&registry_, &repository_, nullptr);
  EXPECT_EQ(server.Handle(Get("/boom")).status_code, 500);
  EXPECT_EQ(server.stats().script_errors, 1u);
}

TEST_F(OriginServerTest, TemplateHeaderOnlyWhenTaggingUsed) {
  auto monitor = MakeMonitor();
  OriginServer server(&registry_, &repository_, monitor.get());
  http::Response plain = server.Handle(Get("/hello"));
  EXPECT_FALSE(plain.headers.Has(bem::kTemplateHeader));
  http::Response templated = server.Handle(Get("/cached"));
  EXPECT_TRUE(templated.headers.Has(bem::kTemplateHeader));
  EXPECT_EQ(server.stats().fragment_misses, 1u);
  // Second request hits.
  server.Handle(Get("/cached"));
  EXPECT_EQ(server.stats().fragment_hits, 1u);
}

TEST_F(OriginServerTest, RefreshHeaderInvalidatesKeys) {
  auto monitor = MakeMonitor();
  OriginServer server(&registry_, &repository_, monitor.get());
  server.Handle(Get("/cached"));
  bem::DpcKey key = *monitor->directory().KeyOf(bem::FragmentId("c"));

  http::Request refresh = Get("/cached");
  refresh.headers.Add(bem::kRefreshHeader, ToHex(key));
  http::Response response = server.Handle(refresh);
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(server.stats().refresh_invalidations, 1u);
  // The refreshed response must carry a SET again (miss path).
  EXPECT_EQ(server.stats().fragment_misses, 2u);
}

// The cold-cache recovery race (the PR-4 loadgen A/B's occasional
// cold-round template_error): the DPC refreshes key k, the origin
// invalidates it, but a concurrent request re-inserts the fragment before
// the refresh re-render's lookup. The lookup would then hit and emit GET
// for content whose SET is still in flight inside the *other* response —
// and the DPC's retry fails again. The script below replays that
// interleaving deterministically: the re-insert runs after
// HandleRefreshHeader but before the script's CacheableBlock, exactly
// where the concurrent request's insert lands.
TEST_F(OriginServerTest, RefreshForcesMissDespiteConcurrentReinsert) {
  auto monitor = MakeMonitor();
  bem::BackEndMonitor* raw = monitor.get();
  registry_.RegisterOrReplace("/race", [raw](ScriptContext& context) {
    if (context.request().headers.Has("X-Test-Reinsert")) {
      Result<bem::DpcKey> reinserted =
          raw->InsertFragment(bem::FragmentId("r"));
      EXPECT_TRUE(reinserted.ok());
    }
    return context.CacheableBlock(bem::FragmentId("r"),
                                  [](ScriptContext& ctx) {
                                    ctx.Emit("fresh content");
                                    return Status::Ok();
                                  });
  });
  OriginServer server(&registry_, &repository_, raw);
  EXPECT_EQ(server.Handle(Get("/race")).status_code, 200);  // Cold SET.
  bem::DpcKey key = *raw->directory().KeyOf(bem::FragmentId("r"));

  http::Request refresh = Get("/race");
  refresh.headers.Add(bem::kRefreshHeader, ToHex(key));
  refresh.headers.Add("X-Test-Reinsert", "1");
  http::Response response = server.Handle(refresh);
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(server.stats().refresh_invalidations, 1u);
  // The refresh response must carry the content inline (a SET tag), never
  // a GET for the content the DPC just said it was missing.
  EXPECT_NE(response.body.find("fresh content"), std::string::npos);
}

TEST_F(OriginServerTest, MalformedRefreshKeysIgnored) {
  auto monitor = MakeMonitor();
  OriginServer server(&registry_, &repository_, monitor.get());
  http::Request request = Get("/hello");
  request.headers.Add(bem::kRefreshHeader, "zz,,1ffffffff");
  EXPECT_EQ(server.Handle(request).status_code, 200);
  EXPECT_EQ(server.stats().refresh_invalidations, 0u);
}

TEST_F(OriginServerTest, HeaderPaddingReachesTarget) {
  OriginOptions options;
  options.pad_headers_to_bytes = 500;
  OriginServer server(&registry_, &repository_, nullptr, options);
  http::Response response = server.Handle(Get("/hello"));
  size_t head_size = response.SerializedSize() - response.body.size();
  EXPECT_EQ(head_size, 500u);
}

TEST_F(OriginServerTest, PaddingSkippedWhenAlreadyLarger) {
  OriginOptions options;
  options.pad_headers_to_bytes = 10;  // Impossible target.
  OriginServer server(&registry_, &repository_, nullptr, options);
  http::Response response = server.Handle(Get("/hello"));
  EXPECT_FALSE(response.headers.Has("X-Pad"));
}

}  // namespace
}  // namespace dynaprox::appserver
