#ifndef DYNAPROX_COMMON_METRICS_H_
#define DYNAPROX_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dynaprox::metrics {

// Process-local metric primitives behind a named registry, exported in
// the Prometheus text exposition format (docs/observability.md). The hot
// path is lock-free: counters, gauges, and histogram buckets are relaxed
// atomics — the same pattern the DPC's serving counters already use —
// so instrumented request paths never take a lock.
//
// This is deliberately distinct from common::Histogram, which keeps every
// sample (simulation-scale analysis, exact percentiles, not thread-safe).
// A LatencyHistogram keeps fixed bucket counts: O(1) memory, safe under
// concurrency, and directly scrapeable; quantiles are bucket-interpolated
// the way Prometheus' histogram_quantile() computes them.

// Monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous value that can go up and down.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram. `bounds` are inclusive upper bucket bounds
// (Prometheus `le` semantics), strictly increasing; one implicit +Inf
// bucket is appended. Observe() is lock-free.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::vector<double> bounds);

  void Observe(double value);

  // Point-in-time copy of the bucket counts. Relaxed loads: counts, sum,
  // and count may be mutually inconsistent by a few in-flight samples.
  struct Snapshot {
    std::vector<double> bounds;    // Upper bounds, excluding +Inf.
    std::vector<uint64_t> counts;  // Per-bucket; size bounds.size() + 1.
    uint64_t count = 0;
    double sum = 0;

    double mean() const;
    // p in [0, 1]; linear interpolation inside the target bucket (the
    // +Inf bucket answers with the highest finite bound). 0 when empty.
    double Percentile(double p) const;
  };
  Snapshot snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  // Default layout for request-latency metrics in seconds: 100 µs to
  // 10 s, roughly 2.5x apart. Documented in docs/observability.md; keep
  // in sync.
  static const std::vector<double>& DefaultLatencySecondsBounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

// Named metric registry. Get* registers on first use and returns a
// stable handle (the same handle for the same name thereafter);
// registration takes a mutex, so grab handles once at setup, not per
// request. RegisterCallback* metrics are sampled at scrape time — the
// bridge for values another component already maintains (pool gauges,
// store occupancy, breaker state).
//
// Names must follow Prometheus conventions ([a-zA-Z_:][a-zA-Z0-9_:]*);
// the registry does not validate. Rendering lists metrics in
// registration order, so exposition output is deterministic (the golden
// test in tests/common/metrics_test.cc relies on this).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  // Empty `bounds` selects DefaultLatencySecondsBounds().
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& help,
                                 std::vector<double> bounds = {});

  void RegisterCallbackCounter(const std::string& name,
                               const std::string& help,
                               std::function<uint64_t()> fn);
  void RegisterCallbackGauge(const std::string& name, const std::string& help,
                             std::function<double()> fn);

  // A labeled gauge family sampled at scrape time: `series_count` samples
  // rendered as name{label_key="i"} under one HELP/TYPE block (e.g. the
  // fragment store's per-shard resident bytes). `fn(i)` supplies sample i.
  void RegisterCallbackGaugeVec(const std::string& name,
                                const std::string& help,
                                const std::string& label_key,
                                size_t series_count,
                                std::function<double(size_t)> fn);

  // A labeled counter family whose series set is dynamic: `fn` returns
  // (label_value, count) pairs at scrape time, rendered as
  // name{label_key="label_value"} under one HELP/TYPE block (e.g. the
  // chaos layer's per-fault-point injection counts, which register
  // lazily as seams are first exercised).
  void RegisterCallbackCounterVec(
      const std::string& name, const std::string& help,
      const std::string& label_key,
      std::function<std::vector<std::pair<std::string, uint64_t>>()> fn);

  // Renders every registered metric in the Prometheus text exposition
  // format (version 0.0.4): # HELP / # TYPE lines, then samples;
  // histograms expand to cumulative _bucket{le=...}, _sum, _count.
  std::string RenderPrometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallbackCounter,
                    kCallbackGauge, kCallbackGaugeVec,
                    kCallbackCounterVec };

  struct Entry {
    Kind kind;
    std::string name;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
    std::function<uint64_t()> callback_counter;
    std::function<double()> callback_gauge;
    std::string label_key;       // kCallback{Gauge,Counter}Vec only.
    size_t series_count = 0;     // kCallbackGaugeVec only.
    std::function<double(size_t)> callback_gauge_vec;
    std::function<std::vector<std::pair<std::string, uint64_t>>()>
        callback_counter_vec;
  };

  Entry* Find(const std::string& name);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace dynaprox::metrics

#endif  // DYNAPROX_COMMON_METRICS_H_
