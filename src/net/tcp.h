#ifndef DYNAPROX_NET_TCP_H_
#define DYNAPROX_NET_TCP_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "net/server_limits.h"
#include "net/transport.h"

namespace dynaprox::net {

// Blocking TCP server with one thread per connection and HTTP/1.1
// keep-alive. Suitable for the examples and integration tests; the
// deterministic simulation uses DirectTransport instead.
//
// Ingress protection (net/server_limits.h): an optional connection cap
// enforced at accept, in-flight request admission (503 + Retry-After
// shedding), header-read/idle/write-stall deadlines, and request byte
// caps (431/413) — all off by default. Stop(drain) drains gracefully:
// accepting stops, in-flight requests finish (answered with
// "Connection: close"), and only connections still busy at the deadline
// are cut.
class TcpServer {
 public:
  // `port` 0 picks an ephemeral port (see port() after Start()).
  TcpServer(Handler handler, uint16_t port = 0, ServerLimits limits = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds, listens on 127.0.0.1, and spawns the accept thread.
  Status Start();

  // Stops accepting, closes all connections, joins all threads. Aborts
  // in-flight requests. Idempotent.
  void Stop();

  // Graceful drain: stops accepting, lets in-flight requests and
  // already-buffered pipelined requests finish (responses carry
  // "Connection: close"), then closes. Connections still busy after
  // `drain_timeout_micros` are shut down hard. Stop(0) == Stop().
  void Stop(MicroTime drain_timeout_micros);

  // Bound port; valid after a successful Start().
  uint16_t port() const { return port_; }

  // Ingress accounting: the ServerLimits::counters the caller supplied,
  // else an internal instance.
  const IngressCounters& ingress() const { return *counters_; }

  // Connection-thread handles currently held (live + finished-awaiting-
  // join). Regression hook: finished handles are reaped eagerly on the
  // accept path, so this tracks concurrent connections, not the total ever
  // accepted.
  size_t connection_thread_handles() const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  // Joins connection threads that have already deregistered themselves.
  void ReapFinishedThreads();

  Handler handler_;
  uint16_t port_;
  ServerLimits limits_;
  IngressCounters own_counters_;
  IngressCounters* counters_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  // This server's open connections. max_connections is enforced against
  // this, never against the (possibly shared) IngressCounters gauge.
  std::atomic<int64_t> live_connections_{0};
  std::thread accept_thread_;
  mutable std::mutex mu_;
  // Live connection threads by id. A thread moves its own handle to
  // finished_threads_ as it exits; the accept loop joins those eagerly,
  // so handles no longer accumulate for the lifetime of the server.
  std::map<std::thread::id, std::thread> connection_threads_;  // By mu_.
  std::vector<std::thread> finished_threads_;                  // By mu_.
  std::vector<int> active_fds_;  // Guarded by mu_; shut down in Stop().
  // Accept-thread only: are we inside an EMFILE/ENFILE episode?
  bool fd_exhausted_ = false;
};

struct TcpClientOptions {
  // Per-operation send/receive timeout; 0 blocks indefinitely. A timeout
  // surfaces as IoError and drops the connection (the next round trip
  // reconnects).
  MicroTime io_timeout_micros = 0;
  // Request headers whose presence marks a request non-idempotent for
  // retry purposes (see net/idempotency.h): once any request bytes may
  // have reached the server, such a request is never re-sent.
  std::vector<std::string> non_idempotent_headers;
};

// Blocking TCP client transport. Opens one keep-alive connection lazily
// and reconnects if the server closed it. Thread-safe by serializing round
// trips on the single connection; use one transport per thread (or a
// pool) when upstream parallelism matters.
//
// RoundTripStreaming holds the connection (and the serialization lock)
// until its BodyStream is drained or destroyed — a concurrent RoundTrip
// on the same transport blocks for the whole body, and one issued from
// the thread consuming the stream deadlocks. A streaming consumer that
// makes nested round trips (e.g. DpcProxy miss recovery) needs
// PooledClientTransport.
class TcpClientTransport : public Transport {
 public:
  TcpClientTransport(std::string host, uint16_t port,
                     TcpClientOptions options = {});
  ~TcpClientTransport() override;

  TcpClientTransport(const TcpClientTransport&) = delete;
  TcpClientTransport& operator=(const TcpClientTransport&) = delete;

  Result<http::Response> RoundTrip(const http::Request& request) override;

  Result<StreamingResponse> RoundTripStreaming(
      const http::Request& request) override;

 private:
  class StreamingBody;

  Status EnsureConnected();
  void CloseConnection();

  std::string host_;
  uint16_t port_;
  TcpClientOptions options_;
  std::mutex mu_;
  int fd_ = -1;  // Guarded by mu_.
};

}  // namespace dynaprox::net

#endif  // DYNAPROX_NET_TCP_H_
