#include "dpc/proxy.h"

#include "common/deadline.h"
#include "common/fault_point.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "net/circuit_breaker.h"
#include "net/connection_pool.h"
#include "net/server_limits.h"

namespace dynaprox::dpc {
namespace {

// Hop-by-hop fields (RFC 7230 §6.1) must not travel past an intermediary.
constexpr const char* kHopByHopHeaders[] = {
    "Connection", "Keep-Alive", "Proxy-Connection", "TE",
    "Trailer",    "Upgrade",
};

void StripHopByHop(http::HeaderMap& headers) {
  // The Connection field also nominates additional hop-by-hop headers
  // (RFC 7230 §6.1): strip those before the standard set (which removes
  // Connection itself). Without this a "Connection: X-Internal-Secret"
  // hop could leak X-Internal-Secret past the proxy.
  if (auto connection = headers.Get("Connection"); connection.has_value()) {
    const std::string nominated(*connection);  // Outlive the removals.
    for (std::string_view token : StrSplit(nominated, ',')) {
      token = StripWhitespace(token);
      if (!token.empty()) headers.Remove(token);
    }
  }
  for (const char* name : kHopByHopHeaders) headers.Remove(name);
}

void AppendVia(http::HeaderMap& headers, const std::string& token) {
  if (auto existing = headers.Get("Via"); existing.has_value()) {
    headers.Set("Via", std::string(*existing) + ", " + token);
  } else {
    headers.Add("Via", token);
  }
}

double MicrosToSeconds(MicroTime micros) {
  return static_cast<double>(micros) / kMicrosPerSecond;
}

// Upstream round trip behind the "dpc.upstream" fault point. Error-class
// actions fail the fetch before it leaves the proxy; garbage substitutes
// an unparseable template (the same detectable shape
// net::FaultInjectingTransport produces), which must surface as a clean
// 502 — never as client bytes.
Result<http::Response> ChaosRoundTrip(net::Transport* upstream,
                                      const http::Request& request) {
  chaos::FaultDecision fault = chaos::ApplyDelay(
      DYNAPROX_FAULT_POINT("dpc.upstream")->Evaluate());
  switch (fault.action) {
    case chaos::FaultAction::kNone:
    case chaos::FaultAction::kDelayMs:
      return upstream->RoundTrip(request);
    case chaos::FaultAction::kGarbage: {
      http::Response garbage =
          http::Response::MakeOk("\x02\x7f chaos garbage \x03");
      garbage.headers.Set(bem::kTemplateHeader, "1");
      return garbage;
    }
    default:
      return Status::Unavailable(
          std::string("chaos:dpc.upstream injected ") +
          chaos::FaultActionName(fault.action));
  }
}

// Everything a streamed body needs to finish the request's bookkeeping
// after Handle() has already returned: metric handles (registry-backed,
// atomic), the clock, the access log, and the log line's fields.
struct StreamContext {
  metrics::Counter* bytes_from_upstream = nullptr;
  metrics::Counter* bytes_to_clients = nullptr;
  metrics::Counter* upstream_errors = nullptr;
  metrics::Counter* template_errors = nullptr;
  metrics::Counter* stream_aborts = nullptr;
  metrics::Counter* assembled = nullptr;
  metrics::Counter* body_bytes_copied = nullptr;
  metrics::Counter* body_bytes_referenced = nullptr;
  metrics::LatencyHistogram* request_duration = nullptr;
  const Clock* clock = nullptr;
  AccessLogger* access_log = nullptr;  // May be null.
  MicroTime start = 0;
  std::string request_id;
  std::string method;
  std::string target;
  int status = 200;
  size_t max_template_bytes = 0;  // 0 = unlimited.
};

// Completion bookkeeping for a streamed response. Duration is measured to
// the moment the body is fully produced (or abandoned), not to the last
// socket flush — the proxy cannot see the hosting server's writes.
void LogStreamCompletion(const StreamContext& ctx, const char* outcome,
                         size_t bytes_sent) {
  MicroTime elapsed = ctx.clock->NowMicros() - ctx.start;
  ctx.request_duration->Observe(MicrosToSeconds(elapsed));
  if (ctx.access_log != nullptr) {
    AccessLogEntry entry;
    entry.timestamp_micros = ctx.start;
    entry.component = "dpc";
    entry.request_id = ctx.request_id;
    entry.method = ctx.method;
    entry.target = ctx.target;
    entry.status = ctx.status;
    entry.bytes_sent = bytes_sent;
    entry.duration_micros = elapsed;
    entry.outcome = outcome;
    ctx.access_log->Log(entry);
  }
}

// Streamed passthrough body: upstream chunks forwarded verbatim, with
// per-chunk byte accounting and the completion bookkeeping at end of
// body. Destruction before end of body (client went away) logs the
// request as abandoned.
class PassthroughStream : public http::BodyStream {
 public:
  PassthroughStream(std::unique_ptr<http::BodyStream> upstream,
                    StreamContext ctx)
      : upstream_(std::move(upstream)), ctx_(std::move(ctx)) {}

  ~PassthroughStream() override {
    if (!completed_) Complete("stream_abandoned");
  }

  Result<common::BufferChain> Next() override {
    if (completed_) return common::BufferChain();
    Result<common::BufferChain> chunk = upstream_->Next();
    if (!chunk.ok()) {
      ctx_.upstream_errors->Increment();
      ctx_.stream_aborts->Increment();
      Complete("stream_abort");
      return chunk.status();
    }
    if (chunk->empty()) {
      Complete("passthrough");
      return chunk;
    }
    ctx_.bytes_from_upstream->Increment(chunk->size());
    ctx_.bytes_to_clients->Increment(chunk->size());
    sent_ += chunk->size();
    return chunk;
  }

 private:
  void Complete(const char* outcome) {
    completed_ = true;
    LogStreamCompletion(ctx_, outcome, sent_);
  }

  std::unique_ptr<http::BodyStream> upstream_;
  StreamContext ctx_;
  size_t sent_ = 0;
  bool completed_ = false;
};

// Streamed scan-and-splice body: pulls template chunks from the upstream
// stream, feeds the incremental assembler, and yields assembled output
// the moment it resolves. Constructed at commit time with whatever the
// prefetch in HandleStreaming already produced; failures from here on are
// post-commit and abort the stream (the hosting server truncates the
// chunked body).
class AssemblingStream : public http::BodyStream {
 public:
  AssemblingStream(std::unique_ptr<http::BodyStream> upstream,
                   StreamingAssembler assembler, common::BufferChain pending,
                   size_t template_bytes, StreamContext ctx)
      : upstream_(std::move(upstream)),
        assembler_(std::move(assembler)),
        pending_(std::move(pending)),
        template_bytes_(template_bytes),
        ctx_(std::move(ctx)) {}

  ~AssemblingStream() override {
    if (!completed_) Complete("stream_abandoned");
  }

  Result<common::BufferChain> Next() override {
    if (failed_) return failure_;
    if (finished_) return common::BufferChain();
    if (!pending_.empty()) {
      common::BufferChain out = std::move(pending_);
      pending_.Clear();
      return Deliver(std::move(out));
    }
    common::BufferChain out;
    for (;;) {
      // Post-commit chunk boundary: any injected action becomes an abort
      // (honest truncation) — fabricating or corrupting bytes after the
      // 200 went out is exactly what the invariants forbid.
      if (Status injected = chaos::InjectStatus(
              DYNAPROX_FAULT_POINT("dpc.stream.chunk"));
          !injected.ok()) {
        ctx_.upstream_errors->Increment();
        return Abort(injected);
      }
      Result<common::BufferChain> chunk = upstream_->Next();
      if (!chunk.ok()) {
        ctx_.upstream_errors->Increment();
        return Abort(chunk.status());
      }
      if (chunk->empty()) {
        Status finished = assembler_.Finish(out);
        if (!finished.ok()) {
          ctx_.template_errors->Increment();
          return Abort(finished);
        }
        finished_ = true;
        ctx_.assembled->Increment();
        ctx_.body_bytes_copied->Increment(assembler_.progress().bytes_copied);
        ctx_.body_bytes_referenced->Increment(
            assembler_.progress().bytes_referenced);
        // A non-empty tail goes out now and the next pull ends the body;
        // an empty one ends it directly.
        Result<common::BufferChain> tail = Deliver(std::move(out));
        Complete("streamed");
        return tail;
      }
      template_bytes_ += chunk->size();
      ctx_.bytes_from_upstream->Increment(chunk->size());
      if (ctx_.max_template_bytes != 0 &&
          template_bytes_ > ctx_.max_template_bytes) {
        ctx_.template_errors->Increment();
        return Abort(Status::CapacityExceeded(
            "template exceeds limit: " + std::to_string(template_bytes_) +
            " > " + std::to_string(ctx_.max_template_bytes)));
      }
      for (const common::BufferChain::Slice& slice : chunk->slices()) {
        Status fed = assembler_.Feed(slice.buffer, slice.view(), out);
        if (!fed.ok()) {
          ctx_.template_errors->Increment();
          return Abort(fed);
        }
      }
      if (!out.empty()) return Deliver(std::move(out));
    }
  }

 private:
  Result<common::BufferChain> Deliver(common::BufferChain out) {
    ctx_.bytes_to_clients->Increment(out.size());
    sent_ += out.size();
    return out;
  }

  Result<common::BufferChain> Abort(Status status) {
    failed_ = true;
    failure_ = status;
    ctx_.stream_aborts->Increment();
    DYNAPROX_LOG(kWarning, "dpc")
        << "stream abort (" << ctx_.request_id
        << "): " << status.ToString();
    Complete("stream_abort");
    return failure_;
  }

  void Complete(const char* outcome) {
    completed_ = true;
    LogStreamCompletion(ctx_, outcome, sent_);
  }

  std::unique_ptr<http::BodyStream> upstream_;
  StreamingAssembler assembler_;
  common::BufferChain pending_;  // Output the prefetch already produced.
  size_t template_bytes_;
  StreamContext ctx_;
  size_t sent_ = 0;
  bool finished_ = false;
  bool failed_ = false;
  Status failure_ = Status::Ok();
  bool completed_ = false;
};

}  // namespace

DpcProxy::DpcProxy(net::Transport* upstream, ProxyOptions options)
    : upstream_(upstream),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()),
      store_(options.capacity) {
  if (options_.enable_static_cache) {
    static_cache_ = std::make_unique<StaticCache>(options_.static_cache);
  }
  if (options_.serve_stale) {
    stale_cache_ = std::make_unique<StalePageCache>(options_.stale_cache);
  }
  RegisterMetrics();
}

void DpcProxy::RegisterMetrics() {
  // Serving counters. Registration order here is the exposition order;
  // docs/observability.md lists them in the same order.
  instruments_.requests = registry_.GetCounter(
      "dynaprox_requests_total",
      "Client requests proxied (status/metrics endpoint hits excluded).");
  instruments_.passthrough = registry_.GetCounter(
      "dynaprox_passthrough_total",
      "Upstream responses without a template header, forwarded verbatim.");
  instruments_.assembled = registry_.GetCounter(
      "dynaprox_assembled_total", "Pages assembled from SET/GET templates.");
  instruments_.recoveries = registry_.GetCounter(
      "dynaprox_recoveries_total",
      "Cold-cache refresh round trips (X-DPC-Refresh sent upstream).");
  instruments_.upstream_errors = registry_.GetCounter(
      "dynaprox_upstream_errors_total",
      "Upstream round trips that failed at the transport layer.");
  instruments_.template_errors = registry_.GetCounter(
      "dynaprox_template_errors_total",
      "Corrupt/oversized templates and unrecoverable fragment misses.");
  instruments_.static_hits = registry_.GetCounter(
      "dynaprox_static_hits_total", "Requests served from the static cache.");
  instruments_.static_revalidations = registry_.GetCounter(
      "dynaprox_static_revalidations_total",
      "Stale static entries refreshed by an upstream 304.");
  instruments_.stale_served = registry_.GetCounter(
      "dynaprox_stale_served_total",
      "Degraded responses served from a last-known-good page.");
  instruments_.breaker_rejections = registry_.GetCounter(
      "dynaprox_breaker_rejections_total",
      "Requests fast-failed because the upstream circuit breaker was open.");
  instruments_.degraded_503s = registry_.GetCounter(
      "dynaprox_degraded_503s_total",
      "Degraded requests with no stale copy available (503 sent).");
  instruments_.bytes_from_upstream = registry_.GetCounter(
      "dynaprox_bytes_from_upstream_total",
      "Template/page body bytes received from the origin.");
  instruments_.bytes_to_clients = registry_.GetCounter(
      "dynaprox_bytes_to_clients_total",
      "Response body bytes sent to clients.");
  instruments_.body_bytes_copied = registry_.GetCounter(
      "dynaprox_dpc_body_bytes_copied_total",
      "Assembled-page body bytes memcpy'd (SET materialization only).");
  instruments_.body_bytes_referenced = registry_.GetCounter(
      "dynaprox_dpc_body_bytes_referenced_total",
      "Assembled-page body bytes spliced by reference (literals and GET "
      "fragments), never copied.");
  instruments_.streamed = registry_.GetCounter(
      "dynaprox_streamed_total",
      "Responses committed to streaming delivery (head sent while the "
      "template tail was still arriving).");
  instruments_.stream_fallbacks = registry_.GetCounter(
      "dynaprox_stream_fallbacks_total",
      "Streaming-eligible responses whose template completed during "
      "prefetch and were served buffered instead.");
  instruments_.stream_aborts = registry_.GetCounter(
      "dynaprox_stream_aborts_total",
      "Streams aborted after commit (upstream or template failure "
      "mid-body; the client connection is cut, truncating the chunked "
      "body).");
  instruments_.deadline_exceeded = registry_.GetCounter(
      "dynaprox_deadline_exceeded_total",
      "Requests degraded because the end-to-end deadline budget expired "
      "before upstream/recovery retries completed.");
  // Chaos layer: per-fault-point injection counts, sampled at scrape
  // time from the process-wide registry (docs/failure-modes.md).
  chaos::FaultRegistry::Instance().RegisterMetrics(&registry_);

  // Per-stage latency histograms (seconds).
  instruments_.request_duration = registry_.GetHistogram(
      "dynaprox_request_duration_seconds",
      "Total DPC handling time per proxied request.");
  instruments_.upstream_fetch_duration = registry_.GetHistogram(
      "dynaprox_upstream_fetch_duration_seconds",
      "Origin round-trip time, one observation per upstream fetch.");
  instruments_.scan_duration = registry_.GetHistogram(
      "dynaprox_scan_duration_seconds",
      "Template scan (tag parse) time per assembled page.");
  instruments_.splice_duration = registry_.GetHistogram(
      "dynaprox_splice_duration_seconds",
      "Fragment store/splice time per assembled page.");
  instruments_.ttfb = registry_.GetHistogram(
      "dynaprox_ttfb_seconds",
      "Time from request arrival to the first response body bytes being "
      "ready to send (streamed: at commit; buffered: whole handling "
      "time).");

  // Fragment store, sampled at scrape time.
  registry_.RegisterCallbackGauge(
      "dynaprox_store_capacity", "Fragment slots configured.",
      [this] { return static_cast<double>(store_.capacity()); });
  registry_.RegisterCallbackGauge(
      "dynaprox_store_occupied_slots", "Fragment slots holding content.",
      [this] { return static_cast<double>(store_.occupied_slots()); });
  registry_.RegisterCallbackGauge(
      "dynaprox_store_content_bytes", "Bytes of fragment content stored.",
      [this] { return static_cast<double>(store_.content_bytes()); });
  registry_.RegisterCallbackGaugeVec(
      "dynaprox_dpc_fragment_bytes",
      "Resident fragment bytes per store shard.", "shard",
      FragmentStore::kShards, [this](size_t shard) {
        return static_cast<double>(store_.shard_content_bytes(shard));
      });
  registry_.RegisterCallbackCounter(
      "dynaprox_store_sets_total", "SET instructions executed.",
      [this] { return store_.stats().sets; });
  registry_.RegisterCallbackCounter(
      "dynaprox_store_gets_total", "GET instructions executed.",
      [this] { return store_.stats().gets; });
  registry_.RegisterCallbackCounter(
      "dynaprox_store_get_misses_total",
      "GET instructions that found an empty slot.",
      [this] { return store_.stats().get_misses; });
  registry_.RegisterCallbackCounter(
      "dynaprox_store_pushes_total",
      "Slots populated via the control channel (SetPushed).",
      [this] { return store_.stats().pushes; });
  registry_.RegisterCallbackGauge(
      "dynaprox_store_pushed_slots",
      "Slots whose current content arrived via a push.",
      [this] { return static_cast<double>(store_.pushed_slots()); });

  if (options_.miss_resolver != nullptr) {
    instruments_.peer_fills = registry_.GetCounter(
        "dynaprox_edge_peer_fills_total",
        "Cold-cache GET misses filled from the fragment's ring owner "
        "instead of an origin refresh round trip.");
  }
  if (options_.enable_push) {
    instruments_.pushes_applied = registry_.GetCounter(
        "dynaprox_edge_pushes_applied_total",
        "Control-channel pushes accepted and stored.");
    instruments_.push_bytes = registry_.GetCounter(
        "dynaprox_edge_push_bytes_total",
        "Fragment body bytes received over the control channel.");
    instruments_.peer_serves = registry_.GetCounter(
        "dynaprox_edge_peer_serves_total",
        "Owned fragments served to ring peers from the fragment "
        "endpoint.");
  }

  if (options_.upstream_breaker != nullptr) {
    const net::CircuitBreaker* breaker = options_.upstream_breaker;
    registry_.RegisterCallbackGauge(
        "dynaprox_upstream_breaker_state",
        "Circuit breaker state: 0=closed, 1=open, 2=half-open.",
        [breaker] {
          return static_cast<double>(breaker->stats().state);
        });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_breaker_rejections_total",
        "Requests the breaker fast-failed.",
        [breaker] { return breaker->stats().rejections; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_breaker_opens_total",
        "Transitions into the open state.",
        [breaker] { return breaker->stats().opens; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_breaker_closes_total",
        "Half-open windows that ended in recovery.",
        [breaker] { return breaker->stats().closes; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_breaker_probes_total",
        "Trial requests admitted while half-open.",
        [breaker] { return breaker->stats().probes; });
    registry_.RegisterCallbackGauge(
        "dynaprox_upstream_breaker_window_error_rate",
        "Error rate over the current rolling window.",
        [breaker] { return breaker->stats().window_error_rate; });
  }

  if (options_.ingress != nullptr) {
    net::RegisterIngressMetrics(registry_, "dynaprox_", options_.ingress);
  }

  if (stale_cache_ != nullptr) {
    StalePageCache* stale = stale_cache_.get();
    registry_.RegisterCallbackGauge(
        "dynaprox_stale_pages_entries", "Last-known-good pages retained.",
        [stale] { return static_cast<double>(stale->size()); });
    registry_.RegisterCallbackCounter(
        "dynaprox_stale_pages_remembers_total",
        "Pages recorded into the stale-page cache.",
        [stale] { return stale->stats().remembers; });
    registry_.RegisterCallbackCounter(
        "dynaprox_stale_pages_hits_total",
        "Degraded lookups that found a usable page.",
        [stale] { return stale->stats().hits; });
    registry_.RegisterCallbackCounter(
        "dynaprox_stale_pages_misses_total",
        "Degraded lookups that found nothing usable.",
        [stale] { return stale->stats().misses; });
    registry_.RegisterCallbackCounter(
        "dynaprox_stale_pages_evictions_total",
        "Pages evicted by the LRU bound.",
        [stale] { return stale->stats().evictions; });
  }

  if (options_.upstream_pool != nullptr) {
    const net::ConnectionPool* pool = options_.upstream_pool;
    registry_.RegisterCallbackGauge(
        "dynaprox_upstream_pool_open_connections",
        "Pool connections open (checked out + idle).",
        [pool] { return static_cast<double>(pool->stats().open_connections); });
    registry_.RegisterCallbackGauge(
        "dynaprox_upstream_pool_idle_connections",
        "Pool connections parked in the free list.",
        [pool] { return static_cast<double>(pool->stats().idle_connections); });
    registry_.RegisterCallbackGauge(
        "dynaprox_upstream_pool_wait_queue_depth",
        "Checkouts currently blocked waiting for a connection.",
        [pool] { return static_cast<double>(pool->stats().wait_queue_depth); });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_checkouts_total", "Successful checkouts.",
        [pool] { return pool->stats().checkouts; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_connects_total", "Successful dials.",
        [pool] { return pool->stats().connects; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_reconnects_total",
        "Dials that replaced a dead keep-alive connection.",
        [pool] { return pool->stats().reconnects; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_stale_closed_total",
        "Idle connections found dead at checkout.",
        [pool] { return pool->stats().stale_closed; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_idle_reaped_total",
        "Idle connections closed past the idle deadline.",
        [pool] { return pool->stats().idle_reaped; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_waiter_timeouts_total",
        "Checkouts that gave up waiting.",
        [pool] { return pool->stats().waiter_timeouts; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_waiter_rejections_total",
        "Checkouts rejected by the waiter bound.",
        [pool] { return pool->stats().waiter_rejections; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_connect_failures_total",
        "Dials that exhausted their retries.",
        [pool] { return pool->stats().connect_failures; });
  }

  if (static_cache_ != nullptr) {
    StaticCache* cache = static_cache_.get();
    registry_.RegisterCallbackGauge(
        "dynaprox_static_cache_entries", "Static cache entries retained.",
        [cache] { return static_cast<double>(cache->size()); });
    registry_.RegisterCallbackCounter(
        "dynaprox_static_cache_hits_total", "Fresh static cache hits.",
        [cache] { return cache->stats().hits; });
    registry_.RegisterCallbackCounter(
        "dynaprox_static_cache_misses_total", "Static cache misses.",
        [cache] { return cache->stats().misses; });
    registry_.RegisterCallbackCounter(
        "dynaprox_static_cache_stores_total", "Responses stored.",
        [cache] { return cache->stats().stores; });
    registry_.RegisterCallbackCounter(
        "dynaprox_static_cache_revalidations_total",
        "304-driven freshness extensions.",
        [cache] { return cache->stats().revalidations; });
    registry_.RegisterCallbackCounter(
        "dynaprox_static_cache_stale_served_total",
        "Stale static entries served on upstream error.",
        [cache] { return cache->stats().stale_served; });
    registry_.RegisterCallbackCounter(
        "dynaprox_static_cache_evictions_total", "Entries evicted.",
        [cache] { return cache->stats().evictions; });
  }
}

net::Handler DpcProxy::AsHandler() {
  return [this](const http::Request& request) { return Handle(request); };
}

ProxyStats DpcProxy::stats() const {
  ProxyStats snapshot;
  snapshot.requests = instruments_.requests->value();
  snapshot.passthrough = instruments_.passthrough->value();
  snapshot.assembled = instruments_.assembled->value();
  snapshot.recoveries = instruments_.recoveries->value();
  snapshot.upstream_errors = instruments_.upstream_errors->value();
  snapshot.template_errors = instruments_.template_errors->value();
  snapshot.static_hits = instruments_.static_hits->value();
  snapshot.static_revalidations = instruments_.static_revalidations->value();
  snapshot.stale_served = instruments_.stale_served->value();
  snapshot.breaker_rejections = instruments_.breaker_rejections->value();
  snapshot.degraded_503s = instruments_.degraded_503s->value();
  snapshot.bytes_from_upstream = instruments_.bytes_from_upstream->value();
  snapshot.bytes_to_clients = instruments_.bytes_to_clients->value();
  snapshot.streamed = instruments_.streamed->value();
  snapshot.stream_fallbacks = instruments_.stream_fallbacks->value();
  snapshot.stream_aborts = instruments_.stream_aborts->value();
  snapshot.deadline_exceeded = instruments_.deadline_exceeded->value();
  if (instruments_.peer_fills != nullptr) {
    snapshot.peer_fills = instruments_.peer_fills->value();
  }
  if (instruments_.pushes_applied != nullptr) {
    snapshot.pushes_applied = instruments_.pushes_applied->value();
  }
  if (instruments_.peer_serves != nullptr) {
    snapshot.peer_serves = instruments_.peer_serves->value();
  }
  return snapshot;
}

Status DpcProxy::ApplyPush(bem::DpcKey key, FragmentRef body,
                           MicroTime age_micros) {
  size_t bytes = body == nullptr ? 0 : body->size();
  DYNAPROX_RETURN_IF_ERROR(
      store_.SetPushed(key, std::move(body), age_micros,
                       clock_->NowMicros()));
  if (instruments_.pushes_applied != nullptr) {
    instruments_.pushes_applied->Increment();
  }
  if (instruments_.push_bytes != nullptr) {
    instruments_.push_bytes->Increment(bytes);
  }
  return Status::Ok();
}

http::Response DpcProxy::HandlePush(const http::Request& request) {
  auto key_header = request.headers.Get(bem::kPushKeyHeader);
  if (!key_header.has_value()) {
    return http::Response::MakeError(400, "Bad Request",
                                     "missing X-DPC-Push-Key header");
  }
  Result<uint64_t> key = ParseHex(*key_header);
  if (!key.ok() || *key > bem::kInvalidDpcKey) {
    return http::Response::MakeError(400, "Bad Request",
                                     "bad X-DPC-Push-Key header");
  }
  MicroTime age = 0;
  if (auto age_header = request.headers.Get(bem::kPushAgeHeader);
      age_header.has_value()) {
    Result<uint64_t> parsed = ParseUint64(*age_header);
    if (!parsed.ok()) {
      return http::Response::MakeError(400, "Bad Request",
                                       "bad X-DPC-Push-Age header");
    }
    age = static_cast<MicroTime>(*parsed);
  }
  Status applied = ApplyPush(
      static_cast<bem::DpcKey>(*key),
      std::make_shared<const std::string>(request.body), age);
  if (!applied.ok()) {
    return http::Response::MakeError(400, "Bad Request",
                                     applied.ToString());
  }
  http::Response response;
  response.status_code = 204;
  response.reason = "No Content";
  return response;
}

http::Response DpcProxy::HandleFragment(const http::Request& request) {
  std::map<std::string, std::string> params = request.QueryParams();
  auto it = params.find("key");
  if (it == params.end()) {
    return http::Response::MakeError(400, "Bad Request",
                                     "missing key query parameter");
  }
  Result<uint64_t> key = ParseHex(it->second);
  if (!key.ok() || *key > bem::kInvalidDpcKey) {
    return http::Response::MakeError(400, "Bad Request",
                                     "bad key query parameter");
  }
  bem::DpcKey dpc_key = static_cast<bem::DpcKey>(*key);
  Result<FragmentRef> fragment = store_.Get(dpc_key);
  if (!fragment.ok()) {
    return http::Response::MakeError(404, "Not Found",
                                     fragment.status().ToString());
  }
  if (instruments_.peer_serves != nullptr) {
    instruments_.peer_serves->Increment();
  }
  http::Response response =
      http::Response::MakeOk(std::string(**fragment), "text/html");
  // Report the body's current age so the fetching peer keeps aging it
  // from the right base instead of restarting at zero.
  Result<MicroTime> age = store_.AgeOf(dpc_key, clock_->NowMicros());
  response.headers.Set(bem::kPushAgeHeader,
                       std::to_string(age.ok() ? *age : 0));
  return response;
}

http::Response DpcProxy::BuildAssembledResponse(
    const http::Request& request, http::Response upstream,
    AssembledPage page) {
  if (options_.on_sets != nullptr && !page.set_keys.empty()) {
    options_.on_sets(page.set_keys);
  }
  http::Response response = std::move(upstream);
  response.headers.Remove(bem::kTemplateHeader);
  response.headers.Remove("Content-Length");
  if (options_.proxy_headers) {
    StripHopByHop(response.headers);
    AppendVia(response.headers, options_.via_token);
  }
  if (options_.add_debug_header) {
    response.headers.Set(
        kDebugHeader, "sets=" + std::to_string(page.set_count) +
                          ";gets=" + std::to_string(page.get_count));
  }
  // Zero-copy handoff: the page's chain (template slices + shared
  // fragment buffers) becomes the response body as-is.
  response.body.clear();
  response.body_chain = std::move(page.body);
  if (stale_cache_ != nullptr && request.method == "GET" &&
      response.status_code == 200) {
    stale_cache_->Remember(request.target, response);
  }
  instruments_.assembled->Increment();
  instruments_.bytes_to_clients->Increment(response.body_size());
  instruments_.body_bytes_copied->Increment(page.bytes_copied);
  instruments_.body_bytes_referenced->Increment(page.bytes_referenced);
  return response;
}

std::optional<http::Response> DpcProxy::LookupAnyStale(
    const std::string& url) {
  std::optional<http::Response> stale;
  if (stale_cache_ != nullptr) {
    if (std::optional<StalePage> page =
            stale_cache_->Lookup(url, options_.max_stale_micros)) {
      stale = std::move(page->response);
      stale->headers.Set(
          "Age", std::to_string(page->age_micros / kMicrosPerSecond));
    }
  }
  if (!stale.has_value() && static_cache_ != nullptr) {
    stale = static_cache_->LookupStale(url);  // Sets Age itself.
  }
  if (!stale.has_value()) return std::nullopt;
  stale->headers.Set("Warning", kStaleWarning);
  if (options_.proxy_headers) {
    StripHopByHop(stale->headers);
    AppendVia(stale->headers, options_.via_token);
  }
  instruments_.stale_served->Increment();
  instruments_.bytes_to_clients->Increment(stale->body_size());
  return stale;
}

http::Response DpcProxy::ServeDegraded(const http::Request& request,
                                       const Status& failure,
                                       bool breaker_rejected,
                                       const char** outcome) {
  if (request.method == "GET") {
    if (std::optional<http::Response> stale =
            LookupAnyStale(request.target)) {
      *outcome = "stale";
      return std::move(*stale);
    }
  }
  if (options_.serve_stale || breaker_rejected ||
      common::IsDeadlineExceeded(failure)) {
    instruments_.degraded_503s->Increment();
    *outcome = common::IsDeadlineExceeded(failure) ? "deadline_503"
                                                   : "degraded_503";
    return net::MakeUnavailableResponse(
        "origin unavailable: " + failure.ToString(),
        options_.retry_after_seconds);
  }
  // Legacy fail-closed behaviour when degradation is not configured.
  *outcome = "upstream_error";
  return http::Response::MakeError(
      502, "Bad Gateway", "upstream error: " + failure.ToString());
}

http::Response DpcProxy::RenderStatus() const {
  ProxyStats snapshot = stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("component").String("dpc");
  json.Key("requests").Uint(snapshot.requests);
  json.Key("assembled").Uint(snapshot.assembled);
  json.Key("passthrough").Uint(snapshot.passthrough);
  json.Key("recoveries").Uint(snapshot.recoveries);
  json.Key("upstream_errors").Uint(snapshot.upstream_errors);
  json.Key("template_errors").Uint(snapshot.template_errors);
  json.Key("stale_served").Uint(snapshot.stale_served);
  json.Key("breaker_rejections").Uint(snapshot.breaker_rejections);
  json.Key("degraded_503s").Uint(snapshot.degraded_503s);
  json.Key("bytes_from_upstream").Uint(snapshot.bytes_from_upstream);
  json.Key("bytes_to_clients").Uint(snapshot.bytes_to_clients);
  json.Key("streamed").Uint(snapshot.streamed);
  json.Key("stream_fallbacks").Uint(snapshot.stream_fallbacks);
  json.Key("stream_aborts").Uint(snapshot.stream_aborts);
  json.Key("deadline_exceeded").Uint(snapshot.deadline_exceeded);
  json.Key("store").BeginObject();
  StoreStats store_stats = store_.stats();
  json.Key("capacity").Uint(store_.capacity());
  json.Key("occupied_slots").Uint(store_.occupied_slots());
  json.Key("content_bytes").Uint(store_.content_bytes());
  json.Key("bytes").BeginArray();
  for (size_t shard = 0; shard < FragmentStore::kShards; ++shard) {
    json.Uint(store_.shard_content_bytes(shard));
  }
  json.EndArray();
  json.Key("sets").Uint(store_stats.sets);
  json.Key("gets").Uint(store_stats.gets);
  json.Key("get_misses").Uint(store_stats.get_misses);
  json.Key("pushes").Uint(store_stats.pushes);
  json.Key("pushed_slots").Uint(store_.pushed_slots());
  json.EndObject();
  if (options_.enable_push || options_.miss_resolver != nullptr) {
    json.Key("edge").BeginObject();
    json.Key("peer_fills").Uint(snapshot.peer_fills);
    json.Key("pushes_applied").Uint(snapshot.pushes_applied);
    json.Key("peer_serves").Uint(snapshot.peer_serves);
    json.EndObject();
  }
  if (options_.upstream_breaker != nullptr) {
    net::CircuitBreakerStats breaker = options_.upstream_breaker->stats();
    json.Key("breaker").BeginObject();
    json.Key("state").String(std::string(BreakerStateName(breaker.state)));
    json.Key("rejections").Uint(breaker.rejections);
    json.Key("opens").Uint(breaker.opens);
    json.Key("closes").Uint(breaker.closes);
    json.Key("probes").Uint(breaker.probes);
    json.Key("window_samples").Int(breaker.window_samples);
    json.Key("window_error_rate").Double(breaker.window_error_rate);
    json.EndObject();
  }
  if (stale_cache_ != nullptr) {
    StalePageCacheStats stale_stats = stale_cache_->stats();
    json.Key("stale_pages").BeginObject();
    json.Key("entries").Uint(stale_cache_->size());
    json.Key("remembers").Uint(stale_stats.remembers);
    json.Key("hits").Uint(stale_stats.hits);
    json.Key("misses").Uint(stale_stats.misses);
    json.Key("evictions").Uint(stale_stats.evictions);
    json.EndObject();
  }
  if (options_.upstream_pool != nullptr) {
    net::PoolStats pool = options_.upstream_pool->stats();
    json.Key("upstream_pool").BeginObject();
    json.Key("open_connections").Int(pool.open_connections);
    json.Key("idle_connections").Int(pool.idle_connections);
    json.Key("wait_queue_depth").Int(pool.wait_queue_depth);
    json.Key("checkouts").Uint(pool.checkouts);
    json.Key("connects").Uint(pool.connects);
    json.Key("reconnects").Uint(pool.reconnects);
    json.Key("stale_closed").Uint(pool.stale_closed);
    json.Key("idle_reaped").Uint(pool.idle_reaped);
    json.Key("waiter_timeouts").Uint(pool.waiter_timeouts);
    json.Key("waiter_rejections").Uint(pool.waiter_rejections);
    json.Key("connect_failures").Uint(pool.connect_failures);
    json.Key("wait_micros").BeginObject();
    json.Key("count").Uint(pool.wait_micros.count());
    json.Key("p50").Double(pool.wait_micros.Percentile(0.5));
    json.Key("p99").Double(pool.wait_micros.Percentile(0.99));
    json.Key("max").Double(pool.wait_micros.count() == 0
                               ? 0.0
                               : pool.wait_micros.max());
    json.EndObject();
    json.EndObject();
  }
  if (options_.ingress != nullptr) {
    net::WriteIngressStatusBlock(json, *options_.ingress);
  }
  if (static_cache_ != nullptr) {
    StaticCacheStats static_stats = static_cache_->stats();
    json.Key("static_cache").BeginObject();
    json.Key("entries").Uint(static_cache_->size());
    json.Key("hits").Uint(static_stats.hits);
    json.Key("misses").Uint(static_stats.misses);
    json.Key("stores").Uint(static_stats.stores);
    json.Key("revalidations").Uint(static_stats.revalidations);
    json.Key("stale_served").Uint(static_stats.stale_served);
    json.Key("evictions").Uint(static_stats.evictions);
    json.EndObject();
  }
  json.EndObject();
  return http::Response::MakeOk(json.TakeString(), "application/json");
}

http::Response DpcProxy::Handle(const http::Request& request) {
  if (options_.enable_status && request.Path() == options_.status_path) {
    return RenderStatus();
  }
  if (options_.enable_metrics && request.Path() == options_.metrics_path) {
    return http::Response::MakeOk(registry_.RenderPrometheus(),
                                  "text/plain; version=0.0.4");
  }
  // Control-channel traffic (pushes in, peer fetches out) is cluster
  // plumbing, not client serving — excluded from the request counters
  // like the status/metrics endpoints above.
  if (options_.enable_push) {
    if (request.Path() == options_.push_path) return HandlePush(request);
    if (request.Path() == options_.fragment_path) {
      return HandleFragment(request);
    }
  }
  instruments_.requests->Increment();

  // Cross-tier correlation id: honour one the client (or an upstream DPC
  // tier) already minted, else mint our own. Forwarded to the origin and
  // echoed to the client.
  std::string request_id;
  if (auto provided = request.headers.Get(bem::kRequestIdHeader);
      provided.has_value() && !provided->empty()) {
    request_id = std::string(*provided);
  } else {
    request_id = request_ids_.Next();
  }

  // End-to-end budget: this request (and everything it triggers —
  // upstream fetch, peer fetches, recovery retries) shares one deadline.
  // A tier above may already have set one; the tighter deadline wins.
  common::DeadlineScope deadline_scope(common::Deadline::Earliest(
      common::CurrentDeadline(),
      common::Deadline::After(clock_, options_.request_budget_micros)));

  MicroTime start = clock_->NowMicros();
  const char* outcome = "error";
  // Streaming is served only when every feature that needs the complete
  // page in hand is off (see ProxyOptions::streaming).
  const bool streaming_eligible =
      options_.streaming && static_cache_ == nullptr &&
      stale_cache_ == nullptr && !options_.add_debug_header;
  http::Response response =
      streaming_eligible
          ? HandleStreaming(request, request_id, start, &outcome)
          : HandleProxied(request, request_id, &outcome);
  response.headers.Set(bem::kRequestIdHeader, request_id);
  if (response.body_stream != nullptr) {
    // Committed stream: duration, TTFB, and the access-log line are
    // recorded by the stream itself when the body completes — the
    // request is still in flight here.
    return response;
  }
  MicroTime elapsed = clock_->NowMicros() - start;
  instruments_.request_duration->Observe(MicrosToSeconds(elapsed));
  instruments_.ttfb->Observe(MicrosToSeconds(elapsed));

  if (options_.access_log != nullptr) {
    AccessLogEntry entry;
    entry.timestamp_micros = start;
    entry.component = "dpc";
    entry.request_id = request_id;
    entry.method = request.method;
    entry.target = request.target;
    entry.status = response.status_code;
    entry.bytes_sent = response.body_size();
    entry.duration_micros = elapsed;
    entry.outcome = outcome;
    options_.access_log->Log(entry);
  }
  return response;
}

http::Response DpcProxy::HandleProxied(const http::Request& request,
                                       const std::string& request_id,
                                       const char** outcome) {
  // Builds the request forwarded upstream; re-applied after each retry
  // mutation so hop-by-hop stripping and the correlation id survive.
  auto prepare_upstream = [&](const http::Request& base) {
    return PrepareUpstream(base, request_id);
  };

  bool revalidating = false;
  http::Request upstream_request = prepare_upstream(request);
  if (static_cache_ != nullptr && request.method == "GET") {
    if (std::optional<http::Response> cached =
            static_cache_->Lookup(request.target)) {
      instruments_.static_hits->Increment();
      instruments_.bytes_to_clients->Increment(cached->body_size());
      *outcome = "static_hit";
      return std::move(*cached);
    }
    // Stale entry with an ETag: try a conditional request.
    if (std::optional<std::string> etag =
            static_cache_->StaleEtag(request.target)) {
      upstream_request.headers.Set("If-None-Match", *etag);
      revalidating = true;
    }
  }
  const common::Deadline deadline = common::CurrentDeadline();
  for (int attempt = 0; attempt <= options_.max_recovery_attempts;
       ++attempt) {
    if (deadline.expired()) {
      instruments_.deadline_exceeded->Increment();
      return ServeDegraded(request,
                           common::DeadlineExceededError(
                               "upstream fetch, attempt " +
                               std::to_string(attempt)),
                           /*breaker_rejected=*/false, outcome);
    }
    MicroTime fetch_start = clock_->NowMicros();
    Result<http::Response> upstream_response =
        ChaosRoundTrip(upstream_, upstream_request);
    instruments_.upstream_fetch_duration->Observe(
        MicrosToSeconds(clock_->NowMicros() - fetch_start));
    if (!upstream_response.ok()) {
      bool breaker_rejected =
          net::IsBreakerRejection(upstream_response.status());
      if (breaker_rejected) {
        instruments_.breaker_rejections->Increment();
      } else {
        instruments_.upstream_errors->Increment();
      }
      return ServeDegraded(request, upstream_response.status(),
                           breaker_rejected, outcome);
    }
    // body_size(), not body.size(): an in-process upstream (DirectTransport
    // over another proxy tier) may deliver the body as a chain.
    instruments_.bytes_from_upstream->Increment(
        upstream_response->body_size());

    if (revalidating && upstream_response->status_code == 304) {
      if (std::optional<http::Response> refreshed =
              static_cache_->Revalidate(request.target,
                                        *upstream_response)) {
        instruments_.static_revalidations->Increment();
        instruments_.bytes_to_clients->Increment(refreshed->body_size());
        *outcome = "static_revalidated";
        return std::move(*refreshed);
      }
      // Entry vanished (evicted between the stale check and the 304):
      // retry unconditionally.
      revalidating = false;
      upstream_request = prepare_upstream(request);
      continue;
    }

    // Serve-stale-on-error (RFC 9111 §4.2.4): a 5xx answer must not
    // displace a still-usable stale copy — serve the copy instead.
    if (upstream_response->status_code >= 500 && request.method == "GET") {
      if (std::optional<http::Response> stale =
              LookupAnyStale(request.target)) {
        *outcome = "stale";
        return std::move(*stale);
      }
    }

    if (!upstream_response->headers.Has(bem::kTemplateHeader)) {
      if (static_cache_ != nullptr && request.method == "GET") {
        static_cache_->Store(request.target, *upstream_response);
      }
      if (stale_cache_ != nullptr && request.method == "GET" &&
          upstream_response->status_code == 200) {
        stale_cache_->Remember(request.target, *upstream_response);
      }
      if (options_.proxy_headers) {
        StripHopByHop(upstream_response->headers);
        AppendVia(upstream_response->headers, options_.via_token);
      }
      instruments_.passthrough->Increment();
      instruments_.bytes_to_clients->Increment(
          upstream_response->body_size());
      *outcome = "passthrough";
      return std::move(*upstream_response);
    }

    if (options_.max_template_bytes != 0 &&
        upstream_response->body_size() > options_.max_template_bytes) {
      instruments_.template_errors->Increment();
      *outcome = "template_error";
      return http::Response::MakeError(
          502, "Bad Gateway",
          "template exceeds limit: " +
              std::to_string(upstream_response->body_size()) + " > " +
              std::to_string(options_.max_template_bytes));
    }

    // The template body moves into a shared wire buffer: the assembled
    // page's literal slices alias it, so it must outlive the page — the
    // chain's references keep it alive, no copy. A chained body (from an
    // in-process upstream tier) is flattened first: the scanner needs
    // contiguous bytes.
    common::Buffer wire =
        upstream_response->body_chain.empty()
            ? common::MakeBuffer(std::move(upstream_response->body))
            : common::MakeBuffer(upstream_response->body_chain.Flatten());
    upstream_response->body.clear();
    upstream_response->body_chain.Clear();
    AssemblyTiming timing;
    Result<AssembledPage> assembled = AssemblePage(
        wire, store_, options_.scan_strategy, clock_, &timing);
    instruments_.scan_duration->Observe(MicrosToSeconds(timing.scan_micros));
    instruments_.splice_duration->Observe(
        MicrosToSeconds(timing.splice_micros));
    if (!assembled.ok()) {
      instruments_.template_errors->Increment();
      *outcome = "template_error";
      return http::Response::MakeError(
          502, "Bad Gateway",
          "template error: " + assembled.status().ToString());
    }
    if (!assembled->complete() && options_.miss_resolver != nullptr) {
      // Cluster peer fill: ask each missing key's ring owner before
      // paying a refresh round trip to the origin. The resolver stores
      // what it finds, so a re-assembly sees a warm store.
      bool all_filled = true;
      for (bem::DpcKey key : assembled->missing_keys) {
        if (options_.miss_resolver(key).ok()) {
          if (instruments_.peer_fills != nullptr) {
            instruments_.peer_fills->Increment();
          }
        } else {
          all_filled = false;
        }
      }
      if (all_filled) {
        assembled = AssemblePage(wire, store_, options_.scan_strategy,
                                 clock_, &timing);
        if (!assembled.ok()) {
          instruments_.template_errors->Increment();
          *outcome = "template_error";
          return http::Response::MakeError(
              502, "Bad Gateway",
              "template error: " + assembled.status().ToString());
        }
      }
    }
    if (assembled->complete()) {
      *outcome = "assembled";
      return BuildAssembledResponse(request, std::move(*upstream_response),
                                    std::move(*assembled));
    }

    // Cold-cache recovery: ask the origin to invalidate the missing keys so
    // the retried response carries fresh SETs.
    instruments_.recoveries->Increment();
    std::string refresh;
    for (bem::DpcKey key : assembled->missing_keys) {
      if (!refresh.empty()) refresh += ',';
      refresh += ToHex(key);
    }
    DYNAPROX_LOG(kInfo, "dpc")
        << "cold-cache recovery for keys [" << refresh << "]";
    upstream_request = prepare_upstream(request);
    upstream_request.headers.Set(bem::kRefreshHeader, refresh);
  }
  instruments_.template_errors->Increment();
  *outcome = "recovery_failed";
  return http::Response::MakeError(502, "Bad Gateway",
                                   "unrecoverable missing fragments");
}

http::Request DpcProxy::PrepareUpstream(const http::Request& base,
                                        const std::string& request_id) const {
  http::Request upstream_request = base;
  if (options_.proxy_headers) {
    StripHopByHop(upstream_request.headers);
    AppendVia(upstream_request.headers, options_.via_token);
  }
  upstream_request.headers.Set(bem::kRequestIdHeader, request_id);
  return upstream_request;
}

Result<FragmentRef> DpcProxy::ResolveMiss(const http::Request& request,
                                          const std::string& request_id,
                                          bem::DpcKey key) {
  // Streamed cold-cache recovery. The buffered path re-fetches and
  // re-assembles the whole page; here bytes before the miss may already
  // be on the wire, so instead the refreshed template's SETs are executed
  // into the store (its page body is discarded) and the slot re-read.
  // The nested round trip rides the same upstream transport — safe on
  // PooledClientTransport (own pool slot) and DirectTransport (plain
  // call); see ProxyOptions::streaming for the TcpClientTransport caveat.
  const common::Deadline deadline = common::CurrentDeadline();
  for (int attempt = 0; attempt < options_.max_recovery_attempts; ++attempt) {
    if (deadline.expired()) {
      instruments_.deadline_exceeded->Increment();
      return common::DeadlineExceededError("streamed recovery for key " +
                                           ToHex(key));
    }
    instruments_.recoveries->Increment();
    http::Request refresh = PrepareUpstream(request, request_id);
    refresh.headers.Set(bem::kRefreshHeader, ToHex(key));
    DYNAPROX_LOG(kInfo, "dpc")
        << "streamed cold-cache recovery for key " << ToHex(key);
    MicroTime fetch_start = clock_->NowMicros();
    Result<http::Response> refreshed = ChaosRoundTrip(upstream_, refresh);
    instruments_.upstream_fetch_duration->Observe(
        MicrosToSeconds(clock_->NowMicros() - fetch_start));
    if (!refreshed.ok()) {
      instruments_.upstream_errors->Increment();
      return refreshed.status();
    }
    instruments_.bytes_from_upstream->Increment(refreshed->body_size());
    if (!refreshed->headers.Has(bem::kTemplateHeader)) {
      // The origin no longer answers this URL with a template; there are
      // no SETs to learn from, so retrying cannot help.
      break;
    }
    const std::string wire = refreshed->BodyText();
    Result<std::vector<TemplateSegment>> segments =
        ParseTemplate(wire, options_.scan_strategy);
    if (!segments.ok()) return segments.status();
    for (const TemplateSegment& segment : *segments) {
      if (segment.kind != TemplateSegment::Kind::kSet) continue;
      Status stored = store_.Set(
          segment.key, std::make_shared<const std::string>(segment.Text()));
      if (!stored.ok()) return stored;
    }
    Result<FragmentRef> fragment = store_.Get(key);
    if (fragment.ok()) return fragment;
    // With a pooled upstream the refresh can race a concurrent request
    // whose SET is still in flight and miss again — retry.
  }
  return Status::NotFound("fragment " + ToHex(key) +
                          " unrecoverable after refresh");
}

http::Response DpcProxy::HandleStreaming(const http::Request& request,
                                         const std::string& request_id,
                                         MicroTime start,
                                         const char** outcome) {
  http::Request upstream_request = PrepareUpstream(request, request_id);
  MicroTime fetch_start = clock_->NowMicros();
  Result<net::StreamingResponse> upstream =
      upstream_->RoundTripStreaming(upstream_request);
  // Head time only: per-chunk body time is the stream consumer's.
  instruments_.upstream_fetch_duration->Observe(
      MicrosToSeconds(clock_->NowMicros() - fetch_start));
  if (!upstream.ok()) {
    bool breaker_rejected = net::IsBreakerRejection(upstream.status());
    if (breaker_rejected) {
      instruments_.breaker_rejections->Increment();
    } else {
      instruments_.upstream_errors->Increment();
    }
    return ServeDegraded(request, upstream.status(), breaker_rejected,
                         outcome);
  }
  http::Response head = std::move(upstream->head);
  std::unique_ptr<http::BodyStream> body = std::move(upstream.value().body);

  StreamContext ctx;
  ctx.bytes_from_upstream = instruments_.bytes_from_upstream;
  ctx.bytes_to_clients = instruments_.bytes_to_clients;
  ctx.upstream_errors = instruments_.upstream_errors;
  ctx.template_errors = instruments_.template_errors;
  ctx.stream_aborts = instruments_.stream_aborts;
  ctx.assembled = instruments_.assembled;
  ctx.body_bytes_copied = instruments_.body_bytes_copied;
  ctx.body_bytes_referenced = instruments_.body_bytes_referenced;
  ctx.request_duration = instruments_.request_duration;
  ctx.clock = clock_;
  ctx.access_log = options_.access_log;
  ctx.start = start;
  ctx.request_id = request_id;
  ctx.method = request.method;
  ctx.target = request.target;
  ctx.status = head.status_code;
  ctx.max_template_bytes = options_.max_template_bytes;

  if (!head.headers.Has(bem::kTemplateHeader)) {
    if (head.status_code != 200) {
      // 304/204/errors must not be re-framed as chunked; collapse to a
      // buffered response (these bodies are empty or tiny anyway).
      std::string collapsed;
      for (;;) {
        Result<common::BufferChain> chunk = body->Next();
        if (!chunk.ok()) {
          instruments_.upstream_errors->Increment();
          return ServeDegraded(request, chunk.status(), false, outcome);
        }
        if (chunk->empty()) break;
        chunk->AppendTo(collapsed);
      }
      instruments_.bytes_from_upstream->Increment(collapsed.size());
      instruments_.bytes_to_clients->Increment(collapsed.size());
      instruments_.passthrough->Increment();
      head.headers.Remove("Transfer-Encoding");
      head.body = std::move(collapsed);
      if (options_.proxy_headers) {
        StripHopByHop(head.headers);
        AppendVia(head.headers, options_.via_token);
      }
      *outcome = "passthrough";
      return head;
    }
    if (options_.proxy_headers) {
      StripHopByHop(head.headers);
      AppendVia(head.headers, options_.via_token);
    }
    // Re-framed as chunked by the hosting server.
    head.headers.Remove("Content-Length");
    head.headers.Remove("Transfer-Encoding");
    instruments_.passthrough->Increment();
    instruments_.streamed->Increment();
    instruments_.ttfb->Observe(MicrosToSeconds(clock_->NowMicros() - start));
    *outcome = "passthrough";
    head.body_stream =
        std::make_shared<PassthroughStream>(std::move(body), std::move(ctx));
    return head;
  }

  head.headers.Remove(bem::kTemplateHeader);
  head.headers.Remove("Content-Length");
  head.headers.Remove("Transfer-Encoding");
  if (options_.proxy_headers) {
    StripHopByHop(head.headers);
    AppendVia(head.headers, options_.via_token);
  }

  auto resolver = [this, base = request, request_id](
                      bem::DpcKey key) -> Result<FragmentRef> {
    if (options_.miss_resolver != nullptr) {
      // Cluster peer fill first; origin recovery only when the ring
      // owner cannot help either.
      Result<FragmentRef> peer = options_.miss_resolver(key);
      if (peer.ok()) {
        if (instruments_.peer_fills != nullptr) {
          instruments_.peer_fills->Increment();
        }
        return peer;
      }
    }
    return ResolveMiss(base, request_id, key);
  };
  StreamingAssembler assembler(store_, options_.scan_strategy,
                               std::move(resolver));

  // Prefetch: pull until the first assembled byte, end of template, or a
  // failure. Failures here are pre-commit — nothing has reached the
  // client yet — so they still yield a clean error response.
  common::BufferChain pending;
  size_t template_bytes = 0;
  bool complete = false;
  bool upstream_failed = false;
  Status failure = Status::Ok();
  while (pending.empty()) {
    // Pre-commit chunk boundary: nothing has reached the client yet, so
    // injected faults must still produce a clean error response —
    // garbage as a template error (502), the rest as upstream failures
    // (degraded/502).
    if (chaos::FaultDecision fault = chaos::ApplyDelay(
            DYNAPROX_FAULT_POINT("dpc.stream.prefetch")->Evaluate());
        static_cast<bool>(fault) &&
        fault.action != chaos::FaultAction::kDelayMs) {
      if (fault.action == chaos::FaultAction::kGarbage) {
        failure = Status::Corruption("chaos:dpc.stream.prefetch garbage");
      } else {
        failure = Status::Unavailable(
            std::string("chaos:dpc.stream.prefetch injected ") +
            chaos::FaultActionName(fault.action));
        upstream_failed = true;
      }
      break;
    }
    Result<common::BufferChain> chunk = body->Next();
    if (!chunk.ok()) {
      failure = chunk.status();
      upstream_failed = true;
      break;
    }
    if (chunk->empty()) {
      failure = assembler.Finish(pending);
      complete = true;
      break;
    }
    template_bytes += chunk->size();
    instruments_.bytes_from_upstream->Increment(chunk->size());
    if (options_.max_template_bytes != 0 &&
        template_bytes > options_.max_template_bytes) {
      failure = Status::CapacityExceeded(
          "template exceeds limit: " + std::to_string(template_bytes) +
          " > " + std::to_string(options_.max_template_bytes));
      break;
    }
    for (const common::BufferChain::Slice& slice : chunk->slices()) {
      failure = assembler.Feed(slice.buffer, slice.view(), pending);
      if (!failure.ok()) break;
    }
    if (!failure.ok()) break;
  }
  if (upstream_failed) {
    instruments_.upstream_errors->Increment();
    return ServeDegraded(request, failure, false, outcome);
  }
  if (!failure.ok()) {
    instruments_.template_errors->Increment();
    *outcome = "template_error";
    return http::Response::MakeError(
        502, "Bad Gateway", "template error: " + failure.ToString());
  }
  if (complete) {
    // Whole template consumed during prefetch (in-process upstreams and
    // small templates): serve buffered — byte-identical to the streamed
    // form, minus the chunked framing.
    instruments_.stream_fallbacks->Increment();
    instruments_.assembled->Increment();
    instruments_.bytes_to_clients->Increment(pending.size());
    instruments_.body_bytes_copied->Increment(
        assembler.progress().bytes_copied);
    instruments_.body_bytes_referenced->Increment(
        assembler.progress().bytes_referenced);
    head.body.clear();
    head.body_chain = std::move(pending);
    *outcome = "assembled";
    return head;
  }
  // Commit: the head and `pending` go to the client now, while the
  // template tail is still arriving.
  instruments_.streamed->Increment();
  instruments_.ttfb->Observe(MicrosToSeconds(clock_->NowMicros() - start));
  *outcome = "streamed";
  head.body_stream = std::make_shared<AssemblingStream>(
      std::move(body), std::move(assembler), std::move(pending),
      template_bytes, std::move(ctx));
  return head;
}

}  // namespace dynaprox::dpc
