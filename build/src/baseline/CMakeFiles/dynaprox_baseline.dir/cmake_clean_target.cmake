file(REMOVE_RECURSE
  "libdynaprox_baseline.a"
)
