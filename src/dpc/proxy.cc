#include "dpc/proxy.h"

#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "net/circuit_breaker.h"
#include "net/connection_pool.h"
#include "net/server_limits.h"

namespace dynaprox::dpc {
namespace {

// Hop-by-hop fields (RFC 7230 §6.1) must not travel past an intermediary.
constexpr const char* kHopByHopHeaders[] = {
    "Connection", "Keep-Alive", "Proxy-Connection", "TE",
    "Trailer",    "Upgrade",
};

void StripHopByHop(http::HeaderMap& headers) {
  for (const char* name : kHopByHopHeaders) headers.Remove(name);
}

void AppendVia(http::HeaderMap& headers, const std::string& token) {
  if (auto existing = headers.Get("Via"); existing.has_value()) {
    headers.Set("Via", std::string(*existing) + ", " + token);
  } else {
    headers.Add("Via", token);
  }
}

double MicrosToSeconds(MicroTime micros) {
  return static_cast<double>(micros) / kMicrosPerSecond;
}

}  // namespace

DpcProxy::DpcProxy(net::Transport* upstream, ProxyOptions options)
    : upstream_(upstream),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()),
      store_(options.capacity) {
  if (options_.enable_static_cache) {
    static_cache_ = std::make_unique<StaticCache>(options_.static_cache);
  }
  if (options_.serve_stale) {
    stale_cache_ = std::make_unique<StalePageCache>(options_.stale_cache);
  }
  RegisterMetrics();
}

void DpcProxy::RegisterMetrics() {
  // Serving counters. Registration order here is the exposition order;
  // docs/observability.md lists them in the same order.
  instruments_.requests = registry_.GetCounter(
      "dynaprox_requests_total",
      "Client requests proxied (status/metrics endpoint hits excluded).");
  instruments_.passthrough = registry_.GetCounter(
      "dynaprox_passthrough_total",
      "Upstream responses without a template header, forwarded verbatim.");
  instruments_.assembled = registry_.GetCounter(
      "dynaprox_assembled_total", "Pages assembled from SET/GET templates.");
  instruments_.recoveries = registry_.GetCounter(
      "dynaprox_recoveries_total",
      "Cold-cache refresh round trips (X-DPC-Refresh sent upstream).");
  instruments_.upstream_errors = registry_.GetCounter(
      "dynaprox_upstream_errors_total",
      "Upstream round trips that failed at the transport layer.");
  instruments_.template_errors = registry_.GetCounter(
      "dynaprox_template_errors_total",
      "Corrupt/oversized templates and unrecoverable fragment misses.");
  instruments_.static_hits = registry_.GetCounter(
      "dynaprox_static_hits_total", "Requests served from the static cache.");
  instruments_.static_revalidations = registry_.GetCounter(
      "dynaprox_static_revalidations_total",
      "Stale static entries refreshed by an upstream 304.");
  instruments_.stale_served = registry_.GetCounter(
      "dynaprox_stale_served_total",
      "Degraded responses served from a last-known-good page.");
  instruments_.breaker_rejections = registry_.GetCounter(
      "dynaprox_breaker_rejections_total",
      "Requests fast-failed because the upstream circuit breaker was open.");
  instruments_.degraded_503s = registry_.GetCounter(
      "dynaprox_degraded_503s_total",
      "Degraded requests with no stale copy available (503 sent).");
  instruments_.bytes_from_upstream = registry_.GetCounter(
      "dynaprox_bytes_from_upstream_total",
      "Template/page body bytes received from the origin.");
  instruments_.bytes_to_clients = registry_.GetCounter(
      "dynaprox_bytes_to_clients_total",
      "Response body bytes sent to clients.");
  instruments_.body_bytes_copied = registry_.GetCounter(
      "dynaprox_dpc_body_bytes_copied_total",
      "Assembled-page body bytes memcpy'd (SET materialization only).");
  instruments_.body_bytes_referenced = registry_.GetCounter(
      "dynaprox_dpc_body_bytes_referenced_total",
      "Assembled-page body bytes spliced by reference (literals and GET "
      "fragments), never copied.");

  // Per-stage latency histograms (seconds).
  instruments_.request_duration = registry_.GetHistogram(
      "dynaprox_request_duration_seconds",
      "Total DPC handling time per proxied request.");
  instruments_.upstream_fetch_duration = registry_.GetHistogram(
      "dynaprox_upstream_fetch_duration_seconds",
      "Origin round-trip time, one observation per upstream fetch.");
  instruments_.scan_duration = registry_.GetHistogram(
      "dynaprox_scan_duration_seconds",
      "Template scan (tag parse) time per assembled page.");
  instruments_.splice_duration = registry_.GetHistogram(
      "dynaprox_splice_duration_seconds",
      "Fragment store/splice time per assembled page.");

  // Fragment store, sampled at scrape time.
  registry_.RegisterCallbackGauge(
      "dynaprox_store_capacity", "Fragment slots configured.",
      [this] { return static_cast<double>(store_.capacity()); });
  registry_.RegisterCallbackGauge(
      "dynaprox_store_occupied_slots", "Fragment slots holding content.",
      [this] { return static_cast<double>(store_.occupied_slots()); });
  registry_.RegisterCallbackGauge(
      "dynaprox_store_content_bytes", "Bytes of fragment content stored.",
      [this] { return static_cast<double>(store_.content_bytes()); });
  registry_.RegisterCallbackGaugeVec(
      "dynaprox_dpc_fragment_bytes",
      "Resident fragment bytes per store shard.", "shard",
      FragmentStore::kShards, [this](size_t shard) {
        return static_cast<double>(store_.shard_content_bytes(shard));
      });
  registry_.RegisterCallbackCounter(
      "dynaprox_store_sets_total", "SET instructions executed.",
      [this] { return store_.stats().sets; });
  registry_.RegisterCallbackCounter(
      "dynaprox_store_gets_total", "GET instructions executed.",
      [this] { return store_.stats().gets; });
  registry_.RegisterCallbackCounter(
      "dynaprox_store_get_misses_total",
      "GET instructions that found an empty slot.",
      [this] { return store_.stats().get_misses; });

  if (options_.upstream_breaker != nullptr) {
    const net::CircuitBreaker* breaker = options_.upstream_breaker;
    registry_.RegisterCallbackGauge(
        "dynaprox_upstream_breaker_state",
        "Circuit breaker state: 0=closed, 1=open, 2=half-open.",
        [breaker] {
          return static_cast<double>(breaker->stats().state);
        });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_breaker_rejections_total",
        "Requests the breaker fast-failed.",
        [breaker] { return breaker->stats().rejections; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_breaker_opens_total",
        "Transitions into the open state.",
        [breaker] { return breaker->stats().opens; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_breaker_closes_total",
        "Half-open windows that ended in recovery.",
        [breaker] { return breaker->stats().closes; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_breaker_probes_total",
        "Trial requests admitted while half-open.",
        [breaker] { return breaker->stats().probes; });
    registry_.RegisterCallbackGauge(
        "dynaprox_upstream_breaker_window_error_rate",
        "Error rate over the current rolling window.",
        [breaker] { return breaker->stats().window_error_rate; });
  }

  if (options_.ingress != nullptr) {
    net::RegisterIngressMetrics(registry_, "dynaprox_", options_.ingress);
  }

  if (stale_cache_ != nullptr) {
    StalePageCache* stale = stale_cache_.get();
    registry_.RegisterCallbackGauge(
        "dynaprox_stale_pages_entries", "Last-known-good pages retained.",
        [stale] { return static_cast<double>(stale->size()); });
    registry_.RegisterCallbackCounter(
        "dynaprox_stale_pages_remembers_total",
        "Pages recorded into the stale-page cache.",
        [stale] { return stale->stats().remembers; });
    registry_.RegisterCallbackCounter(
        "dynaprox_stale_pages_hits_total",
        "Degraded lookups that found a usable page.",
        [stale] { return stale->stats().hits; });
    registry_.RegisterCallbackCounter(
        "dynaprox_stale_pages_misses_total",
        "Degraded lookups that found nothing usable.",
        [stale] { return stale->stats().misses; });
    registry_.RegisterCallbackCounter(
        "dynaprox_stale_pages_evictions_total",
        "Pages evicted by the LRU bound.",
        [stale] { return stale->stats().evictions; });
  }

  if (options_.upstream_pool != nullptr) {
    const net::ConnectionPool* pool = options_.upstream_pool;
    registry_.RegisterCallbackGauge(
        "dynaprox_upstream_pool_open_connections",
        "Pool connections open (checked out + idle).",
        [pool] { return static_cast<double>(pool->stats().open_connections); });
    registry_.RegisterCallbackGauge(
        "dynaprox_upstream_pool_idle_connections",
        "Pool connections parked in the free list.",
        [pool] { return static_cast<double>(pool->stats().idle_connections); });
    registry_.RegisterCallbackGauge(
        "dynaprox_upstream_pool_wait_queue_depth",
        "Checkouts currently blocked waiting for a connection.",
        [pool] { return static_cast<double>(pool->stats().wait_queue_depth); });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_checkouts_total", "Successful checkouts.",
        [pool] { return pool->stats().checkouts; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_connects_total", "Successful dials.",
        [pool] { return pool->stats().connects; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_reconnects_total",
        "Dials that replaced a dead keep-alive connection.",
        [pool] { return pool->stats().reconnects; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_stale_closed_total",
        "Idle connections found dead at checkout.",
        [pool] { return pool->stats().stale_closed; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_idle_reaped_total",
        "Idle connections closed past the idle deadline.",
        [pool] { return pool->stats().idle_reaped; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_waiter_timeouts_total",
        "Checkouts that gave up waiting.",
        [pool] { return pool->stats().waiter_timeouts; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_waiter_rejections_total",
        "Checkouts rejected by the waiter bound.",
        [pool] { return pool->stats().waiter_rejections; });
    registry_.RegisterCallbackCounter(
        "dynaprox_upstream_pool_connect_failures_total",
        "Dials that exhausted their retries.",
        [pool] { return pool->stats().connect_failures; });
  }

  if (static_cache_ != nullptr) {
    StaticCache* cache = static_cache_.get();
    registry_.RegisterCallbackGauge(
        "dynaprox_static_cache_entries", "Static cache entries retained.",
        [cache] { return static_cast<double>(cache->size()); });
    registry_.RegisterCallbackCounter(
        "dynaprox_static_cache_hits_total", "Fresh static cache hits.",
        [cache] { return cache->stats().hits; });
    registry_.RegisterCallbackCounter(
        "dynaprox_static_cache_misses_total", "Static cache misses.",
        [cache] { return cache->stats().misses; });
    registry_.RegisterCallbackCounter(
        "dynaprox_static_cache_stores_total", "Responses stored.",
        [cache] { return cache->stats().stores; });
    registry_.RegisterCallbackCounter(
        "dynaprox_static_cache_revalidations_total",
        "304-driven freshness extensions.",
        [cache] { return cache->stats().revalidations; });
    registry_.RegisterCallbackCounter(
        "dynaprox_static_cache_stale_served_total",
        "Stale static entries served on upstream error.",
        [cache] { return cache->stats().stale_served; });
    registry_.RegisterCallbackCounter(
        "dynaprox_static_cache_evictions_total", "Entries evicted.",
        [cache] { return cache->stats().evictions; });
  }
}

net::Handler DpcProxy::AsHandler() {
  return [this](const http::Request& request) { return Handle(request); };
}

ProxyStats DpcProxy::stats() const {
  ProxyStats snapshot;
  snapshot.requests = instruments_.requests->value();
  snapshot.passthrough = instruments_.passthrough->value();
  snapshot.assembled = instruments_.assembled->value();
  snapshot.recoveries = instruments_.recoveries->value();
  snapshot.upstream_errors = instruments_.upstream_errors->value();
  snapshot.template_errors = instruments_.template_errors->value();
  snapshot.static_hits = instruments_.static_hits->value();
  snapshot.static_revalidations = instruments_.static_revalidations->value();
  snapshot.stale_served = instruments_.stale_served->value();
  snapshot.breaker_rejections = instruments_.breaker_rejections->value();
  snapshot.degraded_503s = instruments_.degraded_503s->value();
  snapshot.bytes_from_upstream = instruments_.bytes_from_upstream->value();
  snapshot.bytes_to_clients = instruments_.bytes_to_clients->value();
  return snapshot;
}

http::Response DpcProxy::BuildAssembledResponse(
    const http::Request& request, http::Response upstream,
    AssembledPage page) {
  http::Response response = std::move(upstream);
  response.headers.Remove(bem::kTemplateHeader);
  response.headers.Remove("Content-Length");
  if (options_.proxy_headers) {
    AppendVia(response.headers, options_.via_token);
  }
  if (options_.add_debug_header) {
    response.headers.Set(
        kDebugHeader, "sets=" + std::to_string(page.set_count) +
                          ";gets=" + std::to_string(page.get_count));
  }
  // Zero-copy handoff: the page's chain (template slices + shared
  // fragment buffers) becomes the response body as-is.
  response.body.clear();
  response.body_chain = std::move(page.body);
  if (stale_cache_ != nullptr && request.method == "GET" &&
      response.status_code == 200) {
    stale_cache_->Remember(request.target, response);
  }
  instruments_.assembled->Increment();
  instruments_.bytes_to_clients->Increment(response.body_size());
  instruments_.body_bytes_copied->Increment(page.bytes_copied);
  instruments_.body_bytes_referenced->Increment(page.bytes_referenced);
  return response;
}

std::optional<http::Response> DpcProxy::LookupAnyStale(
    const std::string& url) {
  std::optional<http::Response> stale;
  if (stale_cache_ != nullptr) {
    if (std::optional<StalePage> page =
            stale_cache_->Lookup(url, options_.max_stale_micros)) {
      stale = std::move(page->response);
      stale->headers.Set(
          "Age", std::to_string(page->age_micros / kMicrosPerSecond));
    }
  }
  if (!stale.has_value() && static_cache_ != nullptr) {
    stale = static_cache_->LookupStale(url);  // Sets Age itself.
  }
  if (!stale.has_value()) return std::nullopt;
  stale->headers.Set("Warning", kStaleWarning);
  if (options_.proxy_headers) {
    AppendVia(stale->headers, options_.via_token);
  }
  instruments_.stale_served->Increment();
  instruments_.bytes_to_clients->Increment(stale->body.size());
  return stale;
}

http::Response DpcProxy::ServeDegraded(const http::Request& request,
                                       const Status& failure,
                                       bool breaker_rejected,
                                       const char** outcome) {
  if (request.method == "GET") {
    if (std::optional<http::Response> stale =
            LookupAnyStale(request.target)) {
      *outcome = "stale";
      return std::move(*stale);
    }
  }
  if (options_.serve_stale || breaker_rejected) {
    instruments_.degraded_503s->Increment();
    *outcome = "degraded_503";
    http::Response response = http::Response::MakeError(
        503, "Service Unavailable",
        "origin unavailable: " + failure.ToString());
    response.headers.Set("Retry-After",
                         std::to_string(options_.retry_after_seconds));
    return response;
  }
  // Legacy fail-closed behaviour when degradation is not configured.
  *outcome = "upstream_error";
  return http::Response::MakeError(
      502, "Bad Gateway", "upstream error: " + failure.ToString());
}

http::Response DpcProxy::RenderStatus() const {
  ProxyStats snapshot = stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("component").String("dpc");
  json.Key("requests").Uint(snapshot.requests);
  json.Key("assembled").Uint(snapshot.assembled);
  json.Key("passthrough").Uint(snapshot.passthrough);
  json.Key("recoveries").Uint(snapshot.recoveries);
  json.Key("upstream_errors").Uint(snapshot.upstream_errors);
  json.Key("template_errors").Uint(snapshot.template_errors);
  json.Key("stale_served").Uint(snapshot.stale_served);
  json.Key("breaker_rejections").Uint(snapshot.breaker_rejections);
  json.Key("degraded_503s").Uint(snapshot.degraded_503s);
  json.Key("bytes_from_upstream").Uint(snapshot.bytes_from_upstream);
  json.Key("bytes_to_clients").Uint(snapshot.bytes_to_clients);
  json.Key("store").BeginObject();
  StoreStats store_stats = store_.stats();
  json.Key("capacity").Uint(store_.capacity());
  json.Key("occupied_slots").Uint(store_.occupied_slots());
  json.Key("content_bytes").Uint(store_.content_bytes());
  json.Key("bytes").BeginArray();
  for (size_t shard = 0; shard < FragmentStore::kShards; ++shard) {
    json.Uint(store_.shard_content_bytes(shard));
  }
  json.EndArray();
  json.Key("sets").Uint(store_stats.sets);
  json.Key("gets").Uint(store_stats.gets);
  json.Key("get_misses").Uint(store_stats.get_misses);
  json.EndObject();
  if (options_.upstream_breaker != nullptr) {
    net::CircuitBreakerStats breaker = options_.upstream_breaker->stats();
    json.Key("breaker").BeginObject();
    json.Key("state").String(std::string(BreakerStateName(breaker.state)));
    json.Key("rejections").Uint(breaker.rejections);
    json.Key("opens").Uint(breaker.opens);
    json.Key("closes").Uint(breaker.closes);
    json.Key("probes").Uint(breaker.probes);
    json.Key("window_samples").Int(breaker.window_samples);
    json.Key("window_error_rate").Double(breaker.window_error_rate);
    json.EndObject();
  }
  if (stale_cache_ != nullptr) {
    StalePageCacheStats stale_stats = stale_cache_->stats();
    json.Key("stale_pages").BeginObject();
    json.Key("entries").Uint(stale_cache_->size());
    json.Key("remembers").Uint(stale_stats.remembers);
    json.Key("hits").Uint(stale_stats.hits);
    json.Key("misses").Uint(stale_stats.misses);
    json.Key("evictions").Uint(stale_stats.evictions);
    json.EndObject();
  }
  if (options_.upstream_pool != nullptr) {
    net::PoolStats pool = options_.upstream_pool->stats();
    json.Key("upstream_pool").BeginObject();
    json.Key("open_connections").Int(pool.open_connections);
    json.Key("idle_connections").Int(pool.idle_connections);
    json.Key("wait_queue_depth").Int(pool.wait_queue_depth);
    json.Key("checkouts").Uint(pool.checkouts);
    json.Key("connects").Uint(pool.connects);
    json.Key("reconnects").Uint(pool.reconnects);
    json.Key("stale_closed").Uint(pool.stale_closed);
    json.Key("idle_reaped").Uint(pool.idle_reaped);
    json.Key("waiter_timeouts").Uint(pool.waiter_timeouts);
    json.Key("waiter_rejections").Uint(pool.waiter_rejections);
    json.Key("connect_failures").Uint(pool.connect_failures);
    json.Key("wait_micros").BeginObject();
    json.Key("count").Uint(pool.wait_micros.count());
    json.Key("p50").Double(pool.wait_micros.Percentile(0.5));
    json.Key("p99").Double(pool.wait_micros.Percentile(0.99));
    json.Key("max").Double(pool.wait_micros.count() == 0
                               ? 0.0
                               : pool.wait_micros.max());
    json.EndObject();
    json.EndObject();
  }
  if (options_.ingress != nullptr) {
    net::WriteIngressStatusBlock(json, *options_.ingress);
  }
  if (static_cache_ != nullptr) {
    StaticCacheStats static_stats = static_cache_->stats();
    json.Key("static_cache").BeginObject();
    json.Key("entries").Uint(static_cache_->size());
    json.Key("hits").Uint(static_stats.hits);
    json.Key("misses").Uint(static_stats.misses);
    json.Key("stores").Uint(static_stats.stores);
    json.Key("revalidations").Uint(static_stats.revalidations);
    json.Key("stale_served").Uint(static_stats.stale_served);
    json.Key("evictions").Uint(static_stats.evictions);
    json.EndObject();
  }
  json.EndObject();
  return http::Response::MakeOk(json.TakeString(), "application/json");
}

http::Response DpcProxy::Handle(const http::Request& request) {
  if (options_.enable_status && request.Path() == options_.status_path) {
    return RenderStatus();
  }
  if (options_.enable_metrics && request.Path() == options_.metrics_path) {
    return http::Response::MakeOk(registry_.RenderPrometheus(),
                                  "text/plain; version=0.0.4");
  }
  instruments_.requests->Increment();

  // Cross-tier correlation id: honour one the client (or an upstream DPC
  // tier) already minted, else mint our own. Forwarded to the origin and
  // echoed to the client.
  std::string request_id;
  if (auto provided = request.headers.Get(bem::kRequestIdHeader);
      provided.has_value() && !provided->empty()) {
    request_id = std::string(*provided);
  } else {
    request_id = request_ids_.Next();
  }

  MicroTime start = clock_->NowMicros();
  const char* outcome = "error";
  http::Response response = HandleProxied(request, request_id, &outcome);
  MicroTime elapsed = clock_->NowMicros() - start;
  instruments_.request_duration->Observe(MicrosToSeconds(elapsed));
  response.headers.Set(bem::kRequestIdHeader, request_id);

  if (options_.access_log != nullptr) {
    AccessLogEntry entry;
    entry.timestamp_micros = start;
    entry.component = "dpc";
    entry.request_id = request_id;
    entry.method = request.method;
    entry.target = request.target;
    entry.status = response.status_code;
    entry.bytes_sent = response.body_size();
    entry.duration_micros = elapsed;
    entry.outcome = outcome;
    options_.access_log->Log(entry);
  }
  return response;
}

http::Response DpcProxy::HandleProxied(const http::Request& request,
                                       const std::string& request_id,
                                       const char** outcome) {
  // Builds the request forwarded upstream; re-applied after each retry
  // mutation so hop-by-hop stripping and the correlation id survive.
  auto prepare_upstream = [&](const http::Request& base) {
    http::Request upstream_request = base;
    if (options_.proxy_headers) {
      StripHopByHop(upstream_request.headers);
      AppendVia(upstream_request.headers, options_.via_token);
    }
    upstream_request.headers.Set(bem::kRequestIdHeader, request_id);
    return upstream_request;
  };

  bool revalidating = false;
  http::Request upstream_request = prepare_upstream(request);
  if (static_cache_ != nullptr && request.method == "GET") {
    if (std::optional<http::Response> cached =
            static_cache_->Lookup(request.target)) {
      instruments_.static_hits->Increment();
      instruments_.bytes_to_clients->Increment(cached->body.size());
      *outcome = "static_hit";
      return std::move(*cached);
    }
    // Stale entry with an ETag: try a conditional request.
    if (std::optional<std::string> etag =
            static_cache_->StaleEtag(request.target)) {
      upstream_request.headers.Set("If-None-Match", *etag);
      revalidating = true;
    }
  }
  for (int attempt = 0; attempt <= options_.max_recovery_attempts;
       ++attempt) {
    MicroTime fetch_start = clock_->NowMicros();
    Result<http::Response> upstream_response =
        upstream_->RoundTrip(upstream_request);
    instruments_.upstream_fetch_duration->Observe(
        MicrosToSeconds(clock_->NowMicros() - fetch_start));
    if (!upstream_response.ok()) {
      bool breaker_rejected =
          net::IsBreakerRejection(upstream_response.status());
      if (breaker_rejected) {
        instruments_.breaker_rejections->Increment();
      } else {
        instruments_.upstream_errors->Increment();
      }
      return ServeDegraded(request, upstream_response.status(),
                           breaker_rejected, outcome);
    }
    instruments_.bytes_from_upstream->Increment(
        upstream_response->body.size());

    if (revalidating && upstream_response->status_code == 304) {
      if (std::optional<http::Response> refreshed =
              static_cache_->Revalidate(request.target,
                                        *upstream_response)) {
        instruments_.static_revalidations->Increment();
        instruments_.bytes_to_clients->Increment(refreshed->body.size());
        *outcome = "static_revalidated";
        return std::move(*refreshed);
      }
      // Entry vanished (evicted between the stale check and the 304):
      // retry unconditionally.
      revalidating = false;
      upstream_request = prepare_upstream(request);
      continue;
    }

    // Serve-stale-on-error (RFC 9111 §4.2.4): a 5xx answer must not
    // displace a still-usable stale copy — serve the copy instead.
    if (upstream_response->status_code >= 500 && request.method == "GET") {
      if (std::optional<http::Response> stale =
              LookupAnyStale(request.target)) {
        *outcome = "stale";
        return std::move(*stale);
      }
    }

    if (!upstream_response->headers.Has(bem::kTemplateHeader)) {
      if (static_cache_ != nullptr && request.method == "GET") {
        static_cache_->Store(request.target, *upstream_response);
      }
      if (stale_cache_ != nullptr && request.method == "GET" &&
          upstream_response->status_code == 200) {
        stale_cache_->Remember(request.target, *upstream_response);
      }
      if (options_.proxy_headers) {
        AppendVia(upstream_response->headers, options_.via_token);
      }
      instruments_.passthrough->Increment();
      instruments_.bytes_to_clients->Increment(
          upstream_response->body.size());
      *outcome = "passthrough";
      return std::move(*upstream_response);
    }

    if (options_.max_template_bytes != 0 &&
        upstream_response->body.size() > options_.max_template_bytes) {
      instruments_.template_errors->Increment();
      *outcome = "template_error";
      return http::Response::MakeError(
          502, "Bad Gateway",
          "template exceeds limit: " +
              std::to_string(upstream_response->body.size()) + " > " +
              std::to_string(options_.max_template_bytes));
    }

    // The template body moves into a shared wire buffer: the assembled
    // page's literal slices alias it, so it must outlive the page — the
    // chain's references keep it alive, no copy.
    common::Buffer wire =
        common::MakeBuffer(std::move(upstream_response->body));
    upstream_response->body.clear();
    AssemblyTiming timing;
    Result<AssembledPage> assembled = AssemblePage(
        wire, store_, options_.scan_strategy, clock_, &timing);
    instruments_.scan_duration->Observe(MicrosToSeconds(timing.scan_micros));
    instruments_.splice_duration->Observe(
        MicrosToSeconds(timing.splice_micros));
    if (!assembled.ok()) {
      instruments_.template_errors->Increment();
      *outcome = "template_error";
      return http::Response::MakeError(
          502, "Bad Gateway",
          "template error: " + assembled.status().ToString());
    }
    if (assembled->complete()) {
      *outcome = "assembled";
      return BuildAssembledResponse(request, std::move(*upstream_response),
                                    std::move(*assembled));
    }

    // Cold-cache recovery: ask the origin to invalidate the missing keys so
    // the retried response carries fresh SETs.
    instruments_.recoveries->Increment();
    std::string refresh;
    for (bem::DpcKey key : assembled->missing_keys) {
      if (!refresh.empty()) refresh += ',';
      refresh += ToHex(key);
    }
    DYNAPROX_LOG(kInfo, "dpc")
        << "cold-cache recovery for keys [" << refresh << "]";
    upstream_request = prepare_upstream(request);
    upstream_request.headers.Set(bem::kRefreshHeader, refresh);
  }
  instruments_.template_errors->Increment();
  *outcome = "recovery_failed";
  return http::Response::MakeError(502, "Bad Gateway",
                                   "unrecoverable missing fragments");
}

}  // namespace dynaprox::dpc
