
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cc" "src/sim/CMakeFiles/dynaprox_sim.dir/experiment.cc.o" "gcc" "src/sim/CMakeFiles/dynaprox_sim.dir/experiment.cc.o.d"
  "/root/repo/src/sim/latency.cc" "src/sim/CMakeFiles/dynaprox_sim.dir/latency.cc.o" "gcc" "src/sim/CMakeFiles/dynaprox_sim.dir/latency.cc.o.d"
  "/root/repo/src/sim/testbed.cc" "src/sim/CMakeFiles/dynaprox_sim.dir/testbed.cc.o" "gcc" "src/sim/CMakeFiles/dynaprox_sim.dir/testbed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dynaprox_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analytical/CMakeFiles/dynaprox_analytical.dir/DependInfo.cmake"
  "/root/repo/build/src/appserver/CMakeFiles/dynaprox_appserver.dir/DependInfo.cmake"
  "/root/repo/build/src/bem/CMakeFiles/dynaprox_bem.dir/DependInfo.cmake"
  "/root/repo/build/src/dpc/CMakeFiles/dynaprox_dpc.dir/DependInfo.cmake"
  "/root/repo/build/src/firewall/CMakeFiles/dynaprox_firewall.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynaprox_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dynaprox_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/dynaprox_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
