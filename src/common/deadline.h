#ifndef DYNAPROX_COMMON_DEADLINE_H_
#define DYNAPROX_COMMON_DEADLINE_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace dynaprox::common {

// An absolute per-request time budget, threaded from ingress through
// every retrying layer (upstream fetch, peer fetch, X-DPC-Refresh
// recovery). Each layer used to time out independently, so stacked
// retries could worst-case add up far past the client's own timeout;
// checking one shared deadline before every retry bounds the whole
// request end to end (docs/failure-modes.md, "Deadline budgets").
//
// A default-constructed Deadline is infinite — callers that never set
// a budget keep today's behavior exactly.
class Deadline {
 public:
  Deadline() = default;

  // A deadline `budget_micros` from now on `clock`. A non-positive
  // budget means unlimited.
  static Deadline After(const Clock* clock, MicroTime budget_micros) {
    Deadline deadline;
    if (clock != nullptr && budget_micros > 0) {
      deadline.clock_ = clock;
      deadline.at_micros_ = clock->NowMicros() + budget_micros;
    }
    return deadline;
  }

  // The tighter of two deadlines — how a nested hop combines its own
  // budget with one an outer tier already established.
  static Deadline Earliest(Deadline a, Deadline b) {
    if (a.infinite()) return b;
    if (b.infinite()) return a;
    return a.remaining_micros() <= b.remaining_micros() ? a : b;
  }

  bool infinite() const { return clock_ == nullptr; }
  bool expired() const {
    return clock_ != nullptr && clock_->NowMicros() >= at_micros_;
  }
  // Remaining budget; a large positive value when infinite, clamped to
  // 0 once expired.
  MicroTime remaining_micros() const {
    if (clock_ == nullptr) return INT64_MAX;
    MicroTime left = at_micros_ - clock_->NowMicros();
    return left < 0 ? 0 : left;
  }

 private:
  const Clock* clock_ = nullptr;
  MicroTime at_micros_ = 0;
};

// Ambient per-thread deadline. The DPC serves one request per thread
// and its in-process hops (DirectTransport peer channels, recovery
// renders) stay on that thread, so a thread-local scope propagates the
// budget across callbacks whose signatures predate it (miss_resolver,
// on_sets) without widening every interface.
class DeadlineScope {
 public:
  explicit DeadlineScope(Deadline deadline);
  ~DeadlineScope();
  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  Deadline previous_;
};

// The innermost active scope's deadline; infinite when none is active.
Deadline CurrentDeadline();

// Canonical error for an exhausted budget: Unavailable with a
// recognizable prefix (there is no dedicated StatusCode).
Status DeadlineExceededError(const std::string& where);
bool IsDeadlineExceeded(const Status& status);

}  // namespace dynaprox::common

#endif  // DYNAPROX_COMMON_DEADLINE_H_
