file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_savings_vs_hitratio.dir/fig2b_savings_vs_hitratio.cc.o"
  "CMakeFiles/bench_fig2b_savings_vs_hitratio.dir/fig2b_savings_vs_hitratio.cc.o.d"
  "bench_fig2b_savings_vs_hitratio"
  "bench_fig2b_savings_vs_hitratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_savings_vs_hitratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
