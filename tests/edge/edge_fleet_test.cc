#include "edge/edge_fleet.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "edge/edge_origin.h"
#include "storage/value.h"

namespace dynaprox::edge {
namespace {

// End-to-end forward-proxy fixture: two edge DPCs in front of one
// EdgeOrigin serving a script with a cacheable fragment backed by the
// repository.
class EdgeFleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::Table* quotes = repository_.GetOrCreateTable("quotes");
    quotes->Upsert("IBM", {{"price", storage::Value(100.0)}});

    registry_.RegisterOrReplace(
        "/quote", [](appserver::ScriptContext& context) {
          return context.CacheableBlock(
              bem::FragmentId("quote", {{"sym", "IBM"}}),
              [](appserver::ScriptContext& ctx) {
                storage::Row row =
                    *(*ctx.repository()->GetTable("quotes"))->Get("IBM");
                ctx.DeclareDependency("quotes", "IBM");
                ctx.Emit("IBM@" +
                         storage::ValueToString(row.at("price")));
                return Status::Ok();
              });
        });

    bem::BemOptions bem_options;
    bem_options.capacity = 32;
    bem_options.clock = &clock_;
    origin_ = std::make_unique<EdgeOrigin>(&registry_, &repository_,
                                           bem_options);
    origin_transport_ =
        std::make_unique<net::DirectTransport>(origin_->AsHandler());

    EdgeFleetOptions fleet_options;
    fleet_options.proxy_options.capacity = 32;
    fleet_ = std::make_unique<EdgeFleet>(origin_transport_.get(),
                                         fleet_options);
    for (const char* node : {"edge-east", "edge-west"}) {
      ASSERT_TRUE(origin_->AddEdge(node).ok());
      ASSERT_TRUE(fleet_->AddNode(node).ok());
    }
  }

  http::Request RequestFromClient(const std::string& client) {
    http::Request request;
    request.target = "/quote";
    request.headers.Add("X-Client", client);
    return request;
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<EdgeOrigin> origin_;
  std::unique_ptr<net::DirectTransport> origin_transport_;
  std::unique_ptr<EdgeFleet> fleet_;
};

TEST_F(EdgeFleetTest, ServesThroughRoutedEdge) {
  http::Response response = fleet_->Handle(RequestFromClient("c1"));
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.BodyText(), "IBM@100.00");
  EXPECT_EQ(fleet_->stats().requests, 1u);
}

TEST_F(EdgeFleetTest, ClientAffinityIsStable) {
  std::string node = *fleet_->RouteFor(RequestFromClient("c1"));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(*fleet_->RouteFor(RequestFromClient("c1")), node);
  }
}

TEST_F(EdgeFleetTest, PerEdgeDirectoriesAreIndependent) {
  // Find clients that land on different edges.
  std::string c_east, c_west;
  for (int i = 0; i < 200 && (c_east.empty() || c_west.empty()); ++i) {
    std::string client = "client" + std::to_string(i);
    std::string node = *fleet_->RouteFor(RequestFromClient(client));
    if (node == "edge-east" && c_east.empty()) c_east = client;
    if (node == "edge-west" && c_west.empty()) c_west = client;
  }
  ASSERT_FALSE(c_east.empty());
  ASSERT_FALSE(c_west.empty());

  // Same fragment requested via both edges: each edge misses once (its own
  // directory) and then hits.
  fleet_->Handle(RequestFromClient(c_east));
  fleet_->Handle(RequestFromClient(c_west));
  fleet_->Handle(RequestFromClient(c_east));
  fleet_->Handle(RequestFromClient(c_west));

  const bem::BackEndMonitor* east = *origin_->MonitorFor("edge-east");
  const bem::BackEndMonitor* west = *origin_->MonitorFor("edge-west");
  EXPECT_EQ(east->stats().misses, 1u);
  EXPECT_EQ(east->stats().hits, 1u);
  EXPECT_EQ(west->stats().misses, 1u);
  EXPECT_EQ(west->stats().hits, 1u);
}

TEST_F(EdgeFleetTest, DataUpdateInvalidatesAllEdges) {
  // Warm both edges.
  std::string c_east, c_west;
  for (int i = 0; i < 200 && (c_east.empty() || c_west.empty()); ++i) {
    std::string client = "client" + std::to_string(i);
    std::string node = *fleet_->RouteFor(RequestFromClient(client));
    if (node == "edge-east" && c_east.empty()) c_east = client;
    if (node == "edge-west" && c_west.empty()) c_west = client;
  }
  http::Response before = fleet_->Handle(RequestFromClient(c_east));
  fleet_->Handle(RequestFromClient(c_west));
  EXPECT_EQ(before.BodyText(), "IBM@100.00");

  // Price change: the update bus fans the invalidation to every edge
  // directory, so both edges serve the fresh value.
  (*repository_.GetTable("quotes"))
      ->Upsert("IBM", {{"price", storage::Value(250.0)}});
  EXPECT_EQ(fleet_->Handle(RequestFromClient(c_east)).BodyText(), "IBM@250.00");
  EXPECT_EQ(fleet_->Handle(RequestFromClient(c_west)).BodyText(), "IBM@250.00");
}

TEST_F(EdgeFleetTest, FailoverServesCorrectContent) {
  http::Request request = RequestFromClient("c-fail");
  std::string primary = *fleet_->RouteFor(request);
  EXPECT_EQ(fleet_->Handle(request).BodyText(), "IBM@100.00");

  ASSERT_TRUE(fleet_->MarkDown(primary).ok());
  std::string backup = *fleet_->RouteFor(request);
  EXPECT_NE(backup, primary);
  // The backup edge has a cold DPC for this client but its own directory
  // at the origin, so the page is still correct.
  EXPECT_EQ(fleet_->Handle(request).BodyText(), "IBM@100.00");

  ASSERT_TRUE(fleet_->MarkUp(primary).ok());
  EXPECT_EQ(*fleet_->RouteFor(request), primary);
}

TEST_F(EdgeFleetTest, AllEdgesDownIs503) {
  ASSERT_TRUE(fleet_->MarkDown("edge-east").ok());
  ASSERT_TRUE(fleet_->MarkDown("edge-west").ok());
  http::Response response = fleet_->Handle(RequestFromClient("c"));
  EXPECT_EQ(response.status_code, 503);
  EXPECT_EQ(fleet_->stats().routing_failures, 1u);
}

TEST_F(EdgeFleetTest, OriginRejectsUnknownEdge) {
  http::Request request;
  request.target = "/quote";
  request.headers.Add(kEdgeHeader, "edge-mars");
  EXPECT_EQ(origin_->Handle(request).status_code, 400);
  http::Request no_edge;
  no_edge.target = "/quote";
  EXPECT_EQ(origin_->Handle(no_edge).status_code, 400);
}

TEST_F(EdgeFleetTest, ClientKeyFallbacks) {
  http::Request with_sid;
  with_sid.target = "/quote?sid=s42";
  EXPECT_EQ(EdgeFleet::ClientKey(with_sid), "s42");
  http::Request bare;
  bare.target = "/quote";
  EXPECT_EQ(EdgeFleet::ClientKey(bare), "/quote");
}

}  // namespace
}  // namespace dynaprox::edge
