// Upstream head-of-line blocking: client-observed response time at
// 1/4/16 concurrent clients against a slow (5 ms) origin, comparing the
// single-socket TcpClientTransport (every round trip serializes on one
// mutex-guarded connection) with the pooled PooledClientTransport
// (concurrent round trips fan out over keep-alive connections). The
// acceptance bar for the pool is a >=4x p99 improvement at 16 clients.
//
// A second section measures FragmentStore contention: aggregate Get/Set
// throughput at 16 threads for the striped store versus a single-mutex
// baseline, since every assembly worker hits the store on the hot path.

#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "dpc/fragment_store.h"
#include "net/connection_pool.h"
#include "net/tcp.h"

namespace {

using dynaprox::kMicrosPerMilli;
using dynaprox::metrics::LatencyHistogram;

constexpr int kOriginDelayMs = 5;
constexpr int kRequestsPerClient = 40;

dynaprox::http::Response SlowOrigin(const dynaprox::http::Request& request) {
  std::this_thread::sleep_for(std::chrono::milliseconds(kOriginDelayMs));
  return dynaprox::http::Response::MakeOk("origin:" +
                                          std::string(request.Path()));
}

// Runs `clients` threads sharing `transport`, each issuing
// kRequestsPerClient round trips, all observing into one shared
// lock-free LatencyHistogram (the same type the proxy exports at
// /_dynaprox/metrics — no per-thread histograms to merge); returns its
// snapshot in milliseconds.
LatencyHistogram::Snapshot Drive(dynaprox::net::Transport& transport,
                                 int clients) {
  LatencyHistogram latencies(dynaprox::benchutil::LatencyMsBounds());
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&transport, &latencies, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        dynaprox::http::Request request;
        request.target = "/c" + std::to_string(c) + "/r" + std::to_string(i);
        auto start = std::chrono::steady_clock::now();
        auto response = transport.RoundTrip(request);
        auto elapsed = std::chrono::steady_clock::now() - start;
        if (!response.ok()) {
          std::fprintf(stderr, "round trip failed: %s\n",
                       response.status().ToString().c_str());
          continue;
        }
        latencies.Observe(
            std::chrono::duration<double, std::milli>(elapsed).count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return latencies.snapshot();
}

// What FragmentStore looked like before lock striping: one mutex in
// front of the slot array, stats maintained under the same lock. Kept
// inline as the bench baseline.
class GlobalLockStore {
 public:
  explicit GlobalLockStore(dynaprox::bem::DpcKey capacity)
      : slots_(capacity) {}

  void Set(dynaprox::bem::DpcKey key, std::string content) {
    auto fresh = std::make_shared<const std::string>(std::move(content));
    std::lock_guard<std::mutex> lock(mu_);
    slots_[key] = std::move(fresh);
    ++stats_.sets;
  }

  dynaprox::dpc::FragmentRef Get(dynaprox::bem::DpcKey key) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.gets;
    if (slots_[key] == nullptr) ++stats_.get_misses;
    return slots_[key];
  }

 private:
  std::mutex mu_;
  std::vector<dynaprox::dpc::FragmentRef> slots_;
  dynaprox::dpc::StoreStats stats_;
};

constexpr int kStoreThreads = 16;
constexpr int kStoreOpsPerThread = 200000;
constexpr dynaprox::bem::DpcKey kStoreCapacity = 4096;

// 16 threads hammer disjoint key ranges, 1 Set per 8 Gets (the DPC is
// read-heavy: one Set per fragment update, one Get per page reference).
// Returns aggregate ops/second.
template <typename Store>
double DriveStore(Store& store) {
  for (dynaprox::bem::DpcKey k = 0; k < kStoreCapacity; ++k) {
    store.Set(k, "fragment body for slot " + std::to_string(k));
  }
  std::vector<std::thread> threads;
  auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < kStoreThreads; ++t) {
    threads.emplace_back([&store, t] {
      dynaprox::bem::DpcKey base =
          static_cast<dynaprox::bem::DpcKey>(t) *
          (kStoreCapacity / kStoreThreads);
      for (int i = 0; i < kStoreOpsPerThread; ++i) {
        dynaprox::bem::DpcKey key =
            base + static_cast<dynaprox::bem::DpcKey>(
                       i % (kStoreCapacity / kStoreThreads));
        if (i % 8 == 7) {
          store.Set(key, "updated fragment body");
        } else {
          (void)store.Get(key);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return kStoreThreads * static_cast<double>(kStoreOpsPerThread) / elapsed;
}

void RunStoreContentionSection() {
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("=== FragmentStore contention: %d threads, %d ops/thread, "
              "1 set per 8 gets, %u cores ===\n",
              kStoreThreads, kStoreOpsPerThread, cores);
  GlobalLockStore global_lock(kStoreCapacity);
  double baseline = DriveStore(global_lock);
  dynaprox::dpc::FragmentStore striped(kStoreCapacity);
  double striped_ops = DriveStore(striped);
  std::printf("%-14s %14.0f ops/s\n", "global-lock", baseline);
  std::printf("%-14s %14.0f ops/s (%.1fx)\n", "striped-16", striped_ops,
              baseline == 0 ? 0.0 : striped_ops / baseline);
  std::printf("expectation: on multi-core hosts the striped store "
              "outscales the single global mutex at 16 threads; on a "
              "single core the two are equivalent (no parallel lock "
              "acquisition to win back)\n\n");
}

}  // namespace

int main() {
  dynaprox::net::TcpServer origin(SlowOrigin);
  if (dynaprox::Status started = origin.Start(); !started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  std::printf("=== Upstream concurrency: %d ms origin, %d requests/client "
              "===\n",
              kOriginDelayMs, kRequestsPerClient);
  std::printf("%-14s %8s %10s %10s %10s %10s %10s\n", "transport",
              "clients", "requests", "mean(ms)", "p50(ms)", "p99(ms)",
              "p100(ms)");

  double single_p99_at_16 = 0;
  double pooled_p99_at_16 = 0;
  for (int clients : {1, 4, 16}) {
    dynaprox::net::TcpClientTransport single("127.0.0.1", origin.port());
    LatencyHistogram::Snapshot h = Drive(single, clients);
    dynaprox::benchutil::PrintLatencyRow("single-socket", clients, h);
    if (clients == 16) single_p99_at_16 = h.Percentile(0.99);
  }
  for (int clients : {1, 4, 16}) {
    dynaprox::net::PooledTransportOptions options;
    options.pool.max_connections = 16;
    dynaprox::net::PooledClientTransport pooled("127.0.0.1", origin.port(),
                                                options);
    LatencyHistogram::Snapshot h = Drive(pooled, clients);
    dynaprox::benchutil::PrintLatencyRow("pooled", clients, h);
    if (clients == 16) pooled_p99_at_16 = h.Percentile(0.99);
    dynaprox::net::PoolStats stats = pooled.pool().stats();
    std::printf("  pool: %llu checkouts, %llu connects, %d open at end\n",
                static_cast<unsigned long long>(stats.checkouts),
                static_cast<unsigned long long>(stats.connects),
                stats.open_connections);
  }

  std::printf("p99 @16 clients: single-socket %.2f ms, pooled %.2f ms "
              "(%.1fx)\n",
              single_p99_at_16, pooled_p99_at_16,
              pooled_p99_at_16 == 0 ? 0.0
                                    : single_p99_at_16 / pooled_p99_at_16);
  std::printf("expectation: pooled p99 at 16 clients improves by >=4x over "
              "the serialized single socket\n\n");
  origin.Stop();

  RunStoreContentionSection();
  return 0;
}
