#include "bem/tag_codec.h"

#include "common/strings.h"

namespace dynaprox::bem {

void TagCodec::AppendLiteral(std::string_view text, std::string& out) {
  for (char c : text) {
    if (c == kStx) {
      out += kStx;
      out += 'L';
      out += kEtx;
    } else {
      out += c;
    }
  }
}

void TagCodec::AppendSet(DpcKey key, std::string_view content,
                         std::string& out) {
  out += kStx;
  out += 'S';
  out += ToHex(key);
  out += kEtx;
  AppendLiteral(content, out);
  out += kStx;
  out += 'E';
  out += kEtx;
}

void TagCodec::AppendGet(DpcKey key, std::string& out) {
  out += kStx;
  out += 'G';
  out += ToHex(key);
  out += kEtx;
}

size_t TagCodec::GetTagSize(DpcKey key) { return 3 + ToHex(key).size(); }

size_t TagCodec::SetFramingSize(DpcKey key) {
  return GetTagSize(key) + 3;  // set-open plus the 3-byte set-close.
}

}  // namespace dynaprox::bem
