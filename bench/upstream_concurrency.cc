// Upstream head-of-line blocking: client-observed response time at
// 1/4/16 concurrent clients against a slow (5 ms) origin, comparing the
// single-socket TcpClientTransport (every round trip serializes on one
// mutex-guarded connection) with the pooled PooledClientTransport
// (concurrent round trips fan out over keep-alive connections). The
// acceptance bar for the pool is a >=4x p99 improvement at 16 clients.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "net/connection_pool.h"
#include "net/tcp.h"

namespace {

using dynaprox::Histogram;
using dynaprox::kMicrosPerMilli;

constexpr int kOriginDelayMs = 5;
constexpr int kRequestsPerClient = 40;

dynaprox::http::Response SlowOrigin(const dynaprox::http::Request& request) {
  std::this_thread::sleep_for(std::chrono::milliseconds(kOriginDelayMs));
  return dynaprox::http::Response::MakeOk("origin:" +
                                          std::string(request.Path()));
}

// Runs `clients` threads sharing `transport`, each issuing
// kRequestsPerClient round trips; returns the merged latency histogram
// in milliseconds.
Histogram Drive(dynaprox::net::Transport& transport, int clients) {
  std::vector<Histogram> latencies(clients);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&transport, &latencies, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        dynaprox::http::Request request;
        request.target = "/c" + std::to_string(c) + "/r" + std::to_string(i);
        auto start = std::chrono::steady_clock::now();
        auto response = transport.RoundTrip(request);
        auto elapsed = std::chrono::steady_clock::now() - start;
        if (!response.ok()) {
          std::fprintf(stderr, "round trip failed: %s\n",
                       response.status().ToString().c_str());
          continue;
        }
        latencies[c].Record(
            std::chrono::duration<double, std::milli>(elapsed).count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Histogram merged;
  for (const Histogram& h : latencies) merged.Merge(h);
  return merged;
}

void PrintRow(const char* label, int clients, const Histogram& h) {
  std::printf("%-14s %8d %10zu %10.2f %10.2f %10.2f %10.2f\n", label,
              clients, h.count(), h.mean(), h.Percentile(0.5),
              h.Percentile(0.99), h.max());
}

}  // namespace

int main() {
  dynaprox::net::TcpServer origin(SlowOrigin);
  if (dynaprox::Status started = origin.Start(); !started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  std::printf("=== Upstream concurrency: %d ms origin, %d requests/client "
              "===\n",
              kOriginDelayMs, kRequestsPerClient);
  std::printf("%-14s %8s %10s %10s %10s %10s %10s\n", "transport",
              "clients", "requests", "mean(ms)", "p50(ms)", "p99(ms)",
              "max(ms)");

  double single_p99_at_16 = 0;
  double pooled_p99_at_16 = 0;
  for (int clients : {1, 4, 16}) {
    dynaprox::net::TcpClientTransport single("127.0.0.1", origin.port());
    Histogram h = Drive(single, clients);
    PrintRow("single-socket", clients, h);
    if (clients == 16) single_p99_at_16 = h.Percentile(0.99);
  }
  for (int clients : {1, 4, 16}) {
    dynaprox::net::PooledTransportOptions options;
    options.pool.max_connections = 16;
    dynaprox::net::PooledClientTransport pooled("127.0.0.1", origin.port(),
                                                options);
    Histogram h = Drive(pooled, clients);
    PrintRow("pooled", clients, h);
    if (clients == 16) pooled_p99_at_16 = h.Percentile(0.99);
    dynaprox::net::PoolStats stats = pooled.pool().stats();
    std::printf("  pool: %llu checkouts, %llu connects, %d open at end\n",
                static_cast<unsigned long long>(stats.checkouts),
                static_cast<unsigned long long>(stats.connects),
                stats.open_connections);
  }

  std::printf("p99 @16 clients: single-socket %.2f ms, pooled %.2f ms "
              "(%.1fx)\n",
              single_p99_at_16, pooled_p99_at_16,
              pooled_p99_at_16 == 0 ? 0.0
                                    : single_p99_at_16 / pooled_p99_at_16);
  std::printf("expectation: pooled p99 at 16 clients improves by >=4x over "
              "the serialized single socket\n\n");
  origin.Stop();
  return 0;
}
