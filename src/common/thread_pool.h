#ifndef DYNAPROX_COMMON_THREAD_POOL_H_
#define DYNAPROX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/contended_mutex.h"

namespace dynaprox::common {

struct ThreadPoolOptions {
  // Worker threads. 0 is legal and means "no workers": every Submit runs
  // the task inline on the caller — callers need no special casing to
  // support a sequential mode.
  int num_threads = 2;
  // Bounded queue: tasks waiting for a worker. A full queue never blocks
  // or drops — see ThreadPool::Submit.
  size_t queue_capacity = 256;
};

// Point-in-time pool counters (relaxed snapshots; monotonic except the
// gauges). queue_depth/peak and caller_runs are the ablation evidence
// that blocks really execute concurrently: a saturated pool shows depth
// and caller-runs climbing with blocks-per-page.
struct ThreadPoolStats {
  uint64_t submitted = 0;    // Submit() calls.
  uint64_t executed = 0;     // Tasks completed by worker threads.
  uint64_t caller_runs = 0;  // Tasks run inline on the submitting thread.
  uint64_t peak_queue_depth = 0;
  size_t queue_depth = 0;    // Gauge: tasks currently waiting.
  uint64_t queue_contentions = 0;  // Contended queue-lock acquisitions.
  int threads = 0;
};

// Fixed-size worker pool over one bounded FIFO queue. Built for the BEM's
// block-execution stage (independent cacheable blocks of one page run
// concurrently) but generic: tasks are plain std::function<void()>.
//
// Backpressure is caller-runs: when the queue is full, the pool has no
// workers, or Shutdown has begun, Submit executes the task inline on the
// submitting thread instead of blocking or failing. Submission therefore
// never deadlocks, queue memory is bounded by queue_capacity, and overload
// degrades to exactly the pre-pool sequential behaviour.
//
// Shutdown is graceful: submitted tasks all run (workers drain the queue
// before exiting), then threads are joined. The destructor shuts down.
// Thread-safe throughout.
class ThreadPool {
 public:
  using Task = std::function<void()>;

  explicit ThreadPool(ThreadPoolOptions options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs `task` on a worker, or inline when that is not possible (see
  // class comment). `task` must not be empty.
  void Submit(Task task);

  // Stops accepting queued work (later Submits run inline), drains the
  // queue, joins all workers. Idempotent.
  void Shutdown();

  ThreadPoolStats stats() const;
  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  mutable ContendedMutex mu_;
  std::condition_variable_any cv_;
  std::deque<Task> queue_;        // Guarded by mu_.
  bool shutting_down_ = false;    // Guarded by mu_.
  uint64_t peak_queue_depth_ = 0; // Guarded by mu_.
  size_t queue_capacity_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> caller_runs_{0};
  std::vector<std::thread> workers_;
};

}  // namespace dynaprox::common

#endif  // DYNAPROX_COMMON_THREAD_POOL_H_
