#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace dynaprox {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "gone");
}

TEST(ResultTest, MoveOnlyValueCanBeExtracted) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(3);
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(ok.value_or(9), 3);
  EXPECT_EQ(err.value_or(9), 9);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status Quarter(int x, int& out) {
  int half = 0;
  DYNAPROX_ASSIGN_OR_RETURN(half, Half(x));
  DYNAPROX_ASSIGN_OR_RETURN(out, Half(half));
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  int out = 0;
  ASSERT_TRUE(Quarter(8, out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(Quarter(6, out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dynaprox
