file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_dpc.dir/assembler.cc.o"
  "CMakeFiles/dynaprox_dpc.dir/assembler.cc.o.d"
  "CMakeFiles/dynaprox_dpc.dir/fragment_store.cc.o"
  "CMakeFiles/dynaprox_dpc.dir/fragment_store.cc.o.d"
  "CMakeFiles/dynaprox_dpc.dir/kmp.cc.o"
  "CMakeFiles/dynaprox_dpc.dir/kmp.cc.o.d"
  "CMakeFiles/dynaprox_dpc.dir/proxy.cc.o"
  "CMakeFiles/dynaprox_dpc.dir/proxy.cc.o.d"
  "CMakeFiles/dynaprox_dpc.dir/static_cache.cc.o"
  "CMakeFiles/dynaprox_dpc.dir/static_cache.cc.o.d"
  "CMakeFiles/dynaprox_dpc.dir/tag_scanner.cc.o"
  "CMakeFiles/dynaprox_dpc.dir/tag_scanner.cc.o.d"
  "libdynaprox_dpc.a"
  "libdynaprox_dpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_dpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
