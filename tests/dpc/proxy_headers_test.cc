// DpcProxy intermediary header semantics (proxy_headers option): hop-by-hop
// stripping and Via on both legs.

#include <gtest/gtest.h>

#include "bem/protocol.h"
#include "bem/tag_codec.h"
#include "dpc/proxy.h"

namespace dynaprox::dpc {
namespace {

class ProxyHeadersTest : public ::testing::Test {
 protected:
  ProxyHeadersTest()
      : upstream_([this](const http::Request& request) {
          last_upstream_request_ = request;
          if (request.Path() == "/template") {
            std::string body;
            bem::TagCodec::AppendSet(0, "frag", body);
            http::Response response = http::Response::MakeOk(body);
            response.headers.Set(bem::kTemplateHeader, "1");
            return response;
          }
          return http::Response::MakeOk("static");
        }) {}

  DpcProxy MakeProxy(bool proxy_headers) {
    ProxyOptions options;
    options.capacity = 8;
    options.proxy_headers = proxy_headers;
    return DpcProxy(&upstream_, options);
  }

  http::Request last_upstream_request_;
  net::DirectTransport upstream_;
};

TEST_F(ProxyHeadersTest, HopByHopStrippedAndViaAddedOnRequest) {
  DpcProxy proxy = MakeProxy(true);
  http::Request request;
  request.target = "/page";
  request.headers.Add("Connection", "keep-alive");
  request.headers.Add("Keep-Alive", "timeout=5");
  request.headers.Add("TE", "trailers");
  request.headers.Add("Upgrade", "h2c");
  request.headers.Add("X-App", "keep-me");
  proxy.Handle(request);
  EXPECT_FALSE(last_upstream_request_.headers.Has("Connection"));
  EXPECT_FALSE(last_upstream_request_.headers.Has("Keep-Alive"));
  EXPECT_FALSE(last_upstream_request_.headers.Has("TE"));
  EXPECT_FALSE(last_upstream_request_.headers.Has("Upgrade"));
  EXPECT_EQ(*last_upstream_request_.headers.Get("X-App"), "keep-me");
  EXPECT_EQ(*last_upstream_request_.headers.Get("Via"),
            "1.1 dynaprox-dpc");
}

TEST_F(ProxyHeadersTest, ViaChainsOntoExistingValue) {
  DpcProxy proxy = MakeProxy(true);
  http::Request request;
  request.target = "/page";
  request.headers.Add("Via", "1.1 upstream-cdn");
  proxy.Handle(request);
  EXPECT_EQ(*last_upstream_request_.headers.Get("Via"),
            "1.1 upstream-cdn, 1.1 dynaprox-dpc");
}

TEST_F(ProxyHeadersTest, ViaOnPassthroughAndAssembledResponses) {
  DpcProxy proxy = MakeProxy(true);
  http::Request plain;
  plain.target = "/page";
  http::Response passthrough = proxy.Handle(plain);
  EXPECT_EQ(*passthrough.headers.Get("Via"), "1.1 dynaprox-dpc");

  http::Request templated;
  templated.target = "/template";
  http::Response assembled = proxy.Handle(templated);
  EXPECT_EQ(assembled.BodyText(), "frag");
  EXPECT_EQ(*assembled.headers.Get("Via"), "1.1 dynaprox-dpc");
}

TEST_F(ProxyHeadersTest, ConnectionNominatedHeadersStrippedOnRequest) {
  // RFC 7230 §6.1: Connection also nominates additional hop-by-hop
  // fields; forwarding one leaks connection-scoped state upstream.
  DpcProxy proxy = MakeProxy(true);
  http::Request request;
  request.target = "/page";
  request.headers.Add("Connection", "close, X-Conn-Token , x-other");
  request.headers.Add("X-Conn-Token", "per-hop-secret");
  request.headers.Add("X-Other", "also-per-hop");
  request.headers.Add("X-App", "keep-me");
  proxy.Handle(request);
  EXPECT_FALSE(last_upstream_request_.headers.Has("Connection"));
  EXPECT_FALSE(last_upstream_request_.headers.Has("X-Conn-Token"));
  EXPECT_FALSE(last_upstream_request_.headers.Has("X-Other"));
  EXPECT_EQ(*last_upstream_request_.headers.Get("X-App"), "keep-me");
}

TEST_F(ProxyHeadersTest, ConnectionNominatedHeadersStrippedOnResponse) {
  net::DirectTransport upstream([](const http::Request&) {
    http::Response response = http::Response::MakeOk("body");
    response.headers.Add("Connection", "X-Hop-State");
    response.headers.Add("X-Hop-State", "origin-conn-42");
    response.headers.Add("X-End-To-End", "stays");
    return response;
  });
  ProxyOptions options;
  options.capacity = 8;
  options.proxy_headers = true;
  DpcProxy proxy(&upstream, options);
  http::Request request;
  request.target = "/page";
  http::Response response = proxy.Handle(request);
  EXPECT_FALSE(response.headers.Has("Connection"));
  EXPECT_FALSE(response.headers.Has("X-Hop-State"));
  EXPECT_EQ(*response.headers.Get("X-End-To-End"), "stays");
}

TEST_F(ProxyHeadersTest, DisabledByDefault) {
  DpcProxy proxy = MakeProxy(false);
  http::Request request;
  request.target = "/page";
  request.headers.Add("Connection", "keep-alive");
  http::Response response = proxy.Handle(request);
  EXPECT_TRUE(last_upstream_request_.headers.Has("Connection"));
  EXPECT_FALSE(last_upstream_request_.headers.Has("Via"));
  EXPECT_FALSE(response.headers.Has("Via"));
}

TEST_F(ProxyHeadersTest, CustomViaToken) {
  ProxyOptions options;
  options.capacity = 8;
  options.proxy_headers = true;
  options.via_token = "1.1 edge-eu";
  DpcProxy proxy(&upstream_, options);
  http::Request request;
  request.target = "/page";
  proxy.Handle(request);
  EXPECT_EQ(*last_upstream_request_.headers.Get("Via"), "1.1 edge-eu");
}

}  // namespace
}  // namespace dynaprox::dpc
