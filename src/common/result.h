#ifndef DYNAPROX_COMMON_RESULT_H_
#define DYNAPROX_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dynaprox {

// Result<T> holds either a value of type T or a non-OK Status; the library's
// value-or-error return type (Arrow-style).
//
// Usage:
//   Result<DpcKey> key = free_list.Allocate();
//   if (!key.ok()) return key.status();
//   Use(*key);
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work
  // in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dynaprox

// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
// move-assigns the value into `lhs` (which must already be declared).
#define DYNAPROX_ASSIGN_OR_RETURN(lhs, rexpr)       \
  do {                                              \
    auto _dp_result = (rexpr);                      \
    if (!_dp_result.ok()) return _dp_result.status(); \
    lhs = std::move(_dp_result).value();            \
  } while (false)

#endif  // DYNAPROX_COMMON_RESULT_H_
