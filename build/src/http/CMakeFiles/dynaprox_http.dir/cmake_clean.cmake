file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_http.dir/cache_control.cc.o"
  "CMakeFiles/dynaprox_http.dir/cache_control.cc.o.d"
  "CMakeFiles/dynaprox_http.dir/header_map.cc.o"
  "CMakeFiles/dynaprox_http.dir/header_map.cc.o.d"
  "CMakeFiles/dynaprox_http.dir/message.cc.o"
  "CMakeFiles/dynaprox_http.dir/message.cc.o.d"
  "CMakeFiles/dynaprox_http.dir/parser.cc.o"
  "CMakeFiles/dynaprox_http.dir/parser.cc.o.d"
  "libdynaprox_http.a"
  "libdynaprox_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
