#include "edge/edge_origin.h"

#include "bem/protocol.h"
#include "common/logging.h"

namespace dynaprox::edge {

EdgeOrigin::EdgeOrigin(const appserver::ScriptRegistry* registry,
                       storage::ContentRepository* repository,
                       bem::BemOptions bem_options,
                       appserver::OriginOptions origin_options)
    : registry_(registry),
      repository_(repository),
      bem_options_(bem_options),
      origin_options_(origin_options) {
  registry_mx_.RegisterCallbackCounter(
      "dynaprox_edge_rejected_total",
      "Requests 400-rejected for a missing or unknown X-DPC-Edge header.",
      [this] { return rejected_total(); });
}

Status EdgeOrigin::AddEdge(const std::string& edge_id) {
  if (edges_.find(edge_id) != edges_.end()) {
    return Status::AlreadyExists("edge exists: " + edge_id);
  }
  Result<std::unique_ptr<bem::BackEndMonitor>> monitor =
      bem::BackEndMonitor::Create(bem_options_);
  if (!monitor.ok()) return monitor.status();
  Edge edge;
  edge.monitor = std::move(*monitor);
  edge.monitor->AttachRepository(repository_);
  edge.server = std::make_unique<appserver::OriginServer>(
      registry_, repository_, edge.monitor.get(), origin_options_);
  edges_.emplace(edge_id, std::move(edge));
  return Status::Ok();
}

http::Response EdgeOrigin::Reject(const http::Request& request,
                                  std::string detail) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  DYNAPROX_LOG(kWarning, "edge_origin")
      << "rejected " << request.method << " " << request.target << ": "
      << detail;
  http::Response response =
      http::Response::MakeError(400, "Bad Request", std::move(detail));
  if (origin_options_.access_log != nullptr) {
    const Clock* clock = origin_options_.clock != nullptr
                             ? origin_options_.clock
                             : SystemClock::Default();
    AccessLogEntry entry;
    entry.timestamp_micros = clock->NowMicros();
    entry.component = "edge_origin";
    if (auto id = request.headers.Get(bem::kRequestIdHeader);
        id.has_value()) {
      entry.request_id = std::string(*id);
    }
    entry.method = request.method;
    entry.target = request.target;
    entry.status = response.status_code;
    entry.bytes_sent = response.body.size();
    entry.outcome = "edge_rejected";
    origin_options_.access_log->Log(entry);
  }
  return response;
}

http::Response EdgeOrigin::Handle(const http::Request& request) {
  auto edge_id = request.headers.Get(kEdgeHeader);
  if (!edge_id.has_value()) {
    return Reject(request, "missing X-DPC-Edge header");
  }
  auto it = edges_.find(std::string(*edge_id));
  if (it == edges_.end()) {
    return Reject(request, "unknown edge: " + std::string(*edge_id));
  }
  return it->second.server->Handle(request);
}

net::Handler EdgeOrigin::AsHandler() {
  return [this](const http::Request& request) { return Handle(request); };
}

Result<const bem::BackEndMonitor*> EdgeOrigin::MonitorFor(
    const std::string& edge_id) const {
  auto it = edges_.find(edge_id);
  if (it == edges_.end()) {
    return Status::NotFound("unknown edge: " + edge_id);
  }
  return static_cast<const bem::BackEndMonitor*>(it->second.monitor.get());
}

Result<appserver::OriginStats> EdgeOrigin::StatsFor(
    const std::string& edge_id) const {
  auto it = edges_.find(edge_id);
  if (it == edges_.end()) {
    return Status::NotFound("unknown edge: " + edge_id);
  }
  return it->second.server->stats();
}

}  // namespace dynaprox::edge
