#ifndef DYNAPROX_DPC_PROXY_H_
#define DYNAPROX_DPC_PROXY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "bem/protocol.h"
#include "common/access_log.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "dpc/assembler.h"
#include "dpc/fragment_store.h"
#include "dpc/stale_cache.h"
#include "dpc/static_cache.h"
#include "net/transport.h"

namespace dynaprox::net {
class ConnectionPool;
class CircuitBreaker;
struct IngressCounters;
}

namespace dynaprox::dpc {

// Optional debug header summarizing assembly on each response. The
// protocol headers shared with the BEM live in bem/protocol.h.
inline constexpr char kDebugHeader[] = "X-DPC";

// Warning header value on degraded (last-known-good) responses, per
// RFC 7234 §5.5.1.
inline constexpr char kStaleWarning[] = "110 dynaprox \"Response is Stale\"";

struct ProxyOptions {
  // Slot count; must equal the BEM's capacity.
  bem::DpcKey capacity = 4096;
  ScanStrategy scan_strategy = ScanStrategy::kMemchr;
  // Retries after a cold-cache GET miss before giving up with 502. With a
  // pooled upstream, a refresh round trip can race a concurrent request
  // whose SET is still in flight and miss again, so allow more than one.
  int max_recovery_attempts = 3;
  // Reject templates larger than this (bytes) with 502; 0 = unlimited.
  // A resource guard against a misbehaving origin. On the streaming path
  // the cap applies to cumulative template bytes and aborts mid-stream.
  size_t max_template_bytes = 0;
  bool add_debug_header = false;
  // Streaming scan-and-splice: consume the upstream template chunk by
  // chunk (net::Transport::RoundTripStreaming) and hand the hosting
  // server a Response::body_stream, so assembled head bytes reach the
  // client while the template tail is still arriving. Per-connection
  // holdback is bounded by chunk size + open-SET body + partial tag,
  // never the page. A request is served streamed only when, additionally,
  // the static cache, serve-stale, and the debug header are all off —
  // those features need the complete page in hand; enabling any of them
  // keeps the buffered path for every request. Cold-cache GET misses are
  // recovered inline per missing key (X-DPC-Refresh round trip on the
  // same transport, then the store is re-read) — with a pooled upstream
  // the nested round trip runs on its own connection; a bare
  // TcpClientTransport would deadlock (see net/tcp.h), so use
  // PooledClientTransport or DirectTransport upstreams when streaming.
  // An upstream or template failure before the first assembled byte
  // still yields a clean 502/degraded response; after bytes are on the
  // wire the connection is aborted (truncated chunked body) instead of
  // sending a complete-looking page.
  bool streaming = false;
  // Also cache untagged (static) responses per their Cache-Control, the
  // way ISA Server's ordinary proxy cache did in the paper's testbed.
  bool enable_static_cache = false;
  StaticCacheOptions static_cache;
  // Degrade to last-known-good content when the origin is unavailable
  // (docs/failure-modes.md): keep a bounded cache of the last page served
  // per URL and reply with it (plus "Warning: 110" and "Age") when the
  // upstream fails or the circuit breaker is open; fall back to 503 +
  // Retry-After only when nothing stale exists.
  bool serve_stale = false;
  StalePageCacheOptions stale_cache;
  // Oldest page age servable in degraded mode; 0 = any age.
  MicroTime max_stale_micros = 0;
  // Retry-After seconds on degraded 503 responses.
  int64_t retry_after_seconds = 5;
  // End-to-end deadline budget per client request (common::Deadline),
  // covering the upstream fetch, peer fetches, and every X-DPC-Refresh
  // recovery retry together — stacked per-layer timeouts can no longer
  // add up past it. Checked before each retry; an exhausted budget
  // degrades (stale copy or 503) instead of starting another attempt.
  // When a caller higher in the stack already established a deadline
  // (edge tier, nested proxy hop), the earlier of the two applies.
  // 0 = unlimited.
  MicroTime request_budget_micros = 0;
  // Serve a JSON status document (proxy counters, store occupancy) at
  // status_path instead of forwarding it upstream.
  bool enable_status = false;
  std::string status_path = "/_dynaprox/status";
  // Serve the Prometheus text exposition (docs/observability.md) at
  // metrics_path instead of forwarding it upstream.
  bool enable_metrics = false;
  std::string metrics_path = "/_dynaprox/metrics";
  // Structured JSON access log, one line per proxied request. Not owned;
  // may be null; must outlive the proxy when set.
  AccessLogger* access_log = nullptr;
  // Time source for latency histograms and log timestamps; defaults to
  // SystemClock. Not owned; must outlive the proxy when set.
  const Clock* clock = nullptr;
  // When the upstream transport is pooled, exposes the pool's gauges in
  // the status document and metric exposition
  // (docs/upstream-pooling.md). Not owned; may be null; must outlive the
  // proxy when set.
  const net::ConnectionPool* upstream_pool = nullptr;
  // When the origin link is guarded by a net::CircuitBreakerTransport,
  // exposes the breaker's state in the status document and metric
  // exposition. Not owned; may be null; must outlive the proxy when set.
  const net::CircuitBreaker* upstream_breaker = nullptr;
  // When the hosting server enforces net::ServerLimits, exposes its
  // ingress gauges/violation counters in the status document and metric
  // exposition. Not owned; may be null; must outlive the proxy when set.
  const net::IngressCounters* ingress = nullptr;
  // Standard intermediary behaviour: strip hop-by-hop request headers
  // before forwarding and append Via on both legs. Off by default so the
  // byte-accounting experiments measure exactly the modeled payloads.
  bool proxy_headers = false;
  std::string via_token = "1.1 dynaprox-dpc";
  // Edge-cluster hooks (docs/edge-tier.md). miss_resolver is consulted for
  // each cold-cache GET miss before the refresh round trip to the origin —
  // the cluster wires a peer fetch from the key's ring owner here. The
  // resolver is expected to store what it finds (so a re-assembly sees a
  // warm store) and return the fragment; a failure falls back to normal
  // recovery. On the streaming path it replaces ResolveMiss the same way.
  StreamingAssembler::MissResolver miss_resolver = nullptr;
  // Fired after a page assembles (buffered path) with the dpcKeys its SETs
  // stored, in template order; the cluster replicates those fragments to
  // their ring owners. Runs on the request thread — keep it cheap or
  // in-process. Not fired on the streaming path.
  std::function<void(const std::vector<bem::DpcKey>&)> on_sets = nullptr;
  // Control-channel endpoints (docs/edge-tier.md): accept pushed fragment
  // bodies at push_path (X-DPC-Push-Key/X-DPC-Push-Age headers) and serve
  // owned fragments to ring peers at fragment_path (?key=hex).
  bool enable_push = false;
  std::string push_path = "/_dynaprox/push";
  std::string fragment_path = "/_dynaprox/fragment";
};

struct ProxyStats {
  uint64_t requests = 0;
  uint64_t passthrough = 0;   // Non-template upstream responses.
  uint64_t assembled = 0;     // Successfully assembled pages.
  uint64_t recoveries = 0;    // Cold-cache refresh round-trips.
  uint64_t upstream_errors = 0;
  uint64_t template_errors = 0;
  uint64_t static_hits = 0;           // Served from the static cache.
  uint64_t static_revalidations = 0;  // Served after an upstream 304.
  uint64_t stale_served = 0;       // Degraded: last-known-good page served.
  uint64_t breaker_rejections = 0;  // Fast-failed by the open breaker.
  uint64_t degraded_503s = 0;       // Origin down and nothing stale: 503.
  uint64_t bytes_from_upstream = 0;  // Template/page bytes received.
  uint64_t bytes_to_clients = 0;     // Assembled body bytes sent.
  uint64_t streamed = 0;          // Responses committed to streaming.
  uint64_t stream_fallbacks = 0;  // Template finished during prefetch:
                                  // served buffered instead.
  uint64_t stream_aborts = 0;     // Streams aborted after commit.
  uint64_t deadline_exceeded = 0;  // Requests degraded on budget expiry.
  uint64_t peer_fills = 0;      // GET misses filled from a ring peer.
  uint64_t pushes_applied = 0;  // Control-channel pushes stored.
  uint64_t peer_serves = 0;     // Fragment-endpoint serves to ring peers.
};

// The Dynamic Proxy Cache (paper 4.3.3) in reverse-proxy mode: stores
// fragments, scans templates, assembles pages. All cache-management
// decisions are made by the BEM at the origin; the DPC only executes
// SET/GET instructions embedded in responses.
//
// Thread-safe: requests may be served from many connection threads. The
// upstream transport must be safe for concurrent RoundTrip calls (or each
// thread must use its own proxy-to-origin connection). Serving counters
// and latency histograms live in a metrics::Registry of relaxed atomics —
// the hot path takes no stats lock. Every request is tagged with an
// X-DPC-Request-Id (minted here unless the client sent one) that is
// forwarded upstream and echoed to the client, so the DPC's and origin's
// access-log lines join on it (docs/observability.md).
class DpcProxy {
 public:
  // `upstream` carries requests to the origin site and must outlive the
  // proxy.
  DpcProxy(net::Transport* upstream, ProxyOptions options);

  // Serves one client request.
  http::Response Handle(const http::Request& request);

  // Adapter so the proxy can sit behind net::TcpServer / DirectTransport.
  net::Handler AsHandler();

  // Models a DPC crash/restart: all slots empty, directory at the BEM
  // unaware — exercises the miss-recovery path. Also empties the static
  // and stale-page caches.
  void ClearCache() {
    store_.Clear();
    if (static_cache_ != nullptr) static_cache_->Clear();
    if (stale_cache_ != nullptr) stale_cache_->Clear();
  }

  // Stores `body` as a control-channel push (age-accounted; see
  // FragmentStore::SetPushed) and accounts the push metrics. The HTTP push
  // endpoint routes here; in-process clusters may call it directly.
  Status ApplyPush(bem::DpcKey key, FragmentRef body, MicroTime age_micros);

  const FragmentStore& store() const { return store_; }
  // Mutable store access for in-process cluster wiring (peer fills write
  // fetched fragments here); not part of the serving API.
  FragmentStore& mutable_store() { return store_; }
  // Null unless enable_static_cache was set.
  const StaticCache* static_cache() const { return static_cache_.get(); }
  // Null unless serve_stale was set.
  const StalePageCache* stale_cache() const { return stale_cache_.get(); }
  // Snapshot of the serving counters.
  ProxyStats stats() const;
  // Every proxy metric (counters + per-stage latency histograms); what
  // the metrics endpoint renders.
  const metrics::Registry& metrics_registry() const { return registry_; }

 private:
  // Registry-backed handles, resolved once at construction; increments
  // are relaxed-atomic (no lock on the serving path).
  struct Instruments {
    metrics::Counter* requests;
    metrics::Counter* passthrough;
    metrics::Counter* assembled;
    metrics::Counter* recoveries;
    metrics::Counter* upstream_errors;
    metrics::Counter* template_errors;
    metrics::Counter* static_hits;
    metrics::Counter* static_revalidations;
    metrics::Counter* stale_served;
    metrics::Counter* breaker_rejections;
    metrics::Counter* degraded_503s;
    metrics::Counter* bytes_from_upstream;
    metrics::Counter* bytes_to_clients;
    metrics::Counter* body_bytes_copied;
    metrics::Counter* body_bytes_referenced;
    metrics::Counter* streamed;
    metrics::Counter* stream_fallbacks;
    metrics::Counter* stream_aborts;
    metrics::Counter* deadline_exceeded;
    // Edge-cluster instruments; registered only when the matching option
    // is set, null otherwise (guard before incrementing).
    metrics::Counter* peer_fills = nullptr;
    metrics::Counter* pushes_applied = nullptr;
    metrics::Counter* push_bytes = nullptr;
    metrics::Counter* peer_serves = nullptr;
    metrics::LatencyHistogram* request_duration;
    metrics::LatencyHistogram* upstream_fetch_duration;
    metrics::LatencyHistogram* scan_duration;
    metrics::LatencyHistogram* splice_duration;
    metrics::LatencyHistogram* ttfb;
  };

  void RegisterMetrics();

  // The proxying path proper (everything except the local status/metrics
  // endpoints); `outcome` receives the serving decision for the access
  // log.
  http::Response HandleProxied(const http::Request& request,
                               const std::string& request_id,
                               const char** outcome);
  // The streamed proxying path (see ProxyOptions::streaming). `start` is
  // the request arrival time, for the TTFB observation at commit.
  http::Response HandleStreaming(const http::Request& request,
                                 const std::string& request_id,
                                 MicroTime start, const char** outcome);
  // The request forwarded upstream: hop-by-hop headers stripped, Via
  // appended (when proxy_headers is on), correlation id set.
  http::Request PrepareUpstream(const http::Request& base,
                                const std::string& request_id) const;
  // Inline cold-cache recovery for one streamed GET miss: refresh round
  // trip for `key`, execute the refreshed template's SETs into the store,
  // re-read the slot; retried up to max_recovery_attempts.
  Result<FragmentRef> ResolveMiss(const http::Request& request,
                                  const std::string& request_id,
                                  bem::DpcKey key);
  http::Response BuildAssembledResponse(const http::Request& request,
                                        http::Response upstream,
                                        AssembledPage page);
  // Degraded path: last-known-good page (Warning: 110 + Age) if one
  // exists, else 503 + Retry-After (or the legacy 502 when serve-stale is
  // off and the failure wasn't a breaker rejection).
  http::Response ServeDegraded(const http::Request& request,
                               const Status& failure, bool breaker_rejected,
                               const char** outcome);
  // Stale copy of `url` from the page cache or the static cache, marked
  // with Warning/Age; accounts stale_served and client bytes.
  std::optional<http::Response> LookupAnyStale(const std::string& url);
  http::Response RenderStatus() const;
  // Control-channel endpoints (ProxyOptions::enable_push).
  http::Response HandlePush(const http::Request& request);
  http::Response HandleFragment(const http::Request& request);

  net::Transport* upstream_;
  ProxyOptions options_;
  const Clock* clock_;
  FragmentStore store_;
  std::unique_ptr<StaticCache> static_cache_;     // Null when disabled.
  std::unique_ptr<StalePageCache> stale_cache_;   // Null when disabled.
  metrics::Registry registry_;
  Instruments instruments_;
  RequestIdGenerator request_ids_;
};

}  // namespace dynaprox::dpc

#endif  // DYNAPROX_DPC_PROXY_H_
