#include <gtest/gtest.h>

#include "http/parser.h"

namespace dynaprox::http {
namespace {

TEST(ChunkedTest, SerializeThenParseRoundTrips) {
  Response response = Response::MakeOk(std::string(10'000, 'x'));
  response.headers.Add("X-Extra", "kept");
  std::string wire = SerializeChunked(response, 1024);
  Result<Response> parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->body, response.body);
  EXPECT_EQ(*parsed->headers.Get("X-Extra"), "kept");
  // Dechunked: explicit length, no Transfer-Encoding.
  EXPECT_FALSE(parsed->headers.Has("Transfer-Encoding"));
  EXPECT_EQ(*parsed->headers.Get("Content-Length"), "10000");
}

TEST(ChunkedTest, EmptyBody) {
  Response response = Response::MakeOk("");
  std::string wire = SerializeChunked(response, 16);
  Result<Response> parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->body, "");
}

TEST(ChunkedTest, HandwrittenChunksWithExtensionAndTrailer) {
  std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4;ext=1\r\nWiki\r\n"
      "5\r\npedia\r\n"
      "0\r\nX-Trailer: v\r\n\r\n";
  Result<Response> parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->body, "Wikipedia");
}

TEST(ChunkedTest, IncrementalReaderReassembles) {
  Response response = Response::MakeOk("hello chunked world");
  std::string wire = SerializeChunked(response, 4);
  ResponseReader reader;
  for (size_t i = 0; i < wire.size(); i += 3) {
    reader.Feed(std::string_view(wire).substr(i, 3));
    if (i + 3 < wire.size()) {
      // Must not yield a message before the terminator arrives.
      auto premature = reader.Next();
      if (premature.has_value()) {
        ASSERT_TRUE(premature->ok());
        EXPECT_EQ(premature->value().body, response.body);
        return;  // Complete early only if all bytes happened to be in.
      }
    }
  }
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  ASSERT_TRUE(next->ok());
  EXPECT_EQ(next->value().body, "hello chunked world");
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(ChunkedTest, ChunkedRequestBody) {
  std::string wire =
      "POST /submit HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n";
  Result<Request> parsed = ParseRequest(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->body, "abc");
}

TEST(ChunkedTest, MalformedFramingRejected) {
  // Bad size line.
  EXPECT_FALSE(ParseResponse("HTTP/1.1 200 OK\r\nTransfer-Encoding: "
                             "chunked\r\n\r\nzz\r\nabc\r\n0\r\n\r\n")
                   .ok());
  // Chunk not CRLF-terminated.
  EXPECT_FALSE(ParseResponse("HTTP/1.1 200 OK\r\nTransfer-Encoding: "
                             "chunked\r\n\r\n3\r\nabcXX0\r\n\r\n")
                   .ok());
  // Truncated (complete-buffer parse requires the terminator).
  EXPECT_FALSE(ParseResponse("HTTP/1.1 200 OK\r\nTransfer-Encoding: "
                             "chunked\r\n\r\n3\r\nabc\r\n")
                   .ok());
}

TEST(ChunkedTest, ReaderFailsCleanlyOnCorruptChunk) {
  ResponseReader reader;
  reader.Feed(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n");
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->ok());
  EXPECT_TRUE(reader.failed());
}

TEST(ChunkedTest, PipelinedAfterChunkedMessage) {
  Response first = Response::MakeOk("one");
  Response second = Response::MakeOk("two");
  ResponseReader reader;
  reader.Feed(SerializeChunked(first, 2) + second.Serialize());
  auto a = reader.Next();
  ASSERT_TRUE(a.has_value() && a->ok());
  EXPECT_EQ(a->value().body, "one");
  auto b = reader.Next();
  ASSERT_TRUE(b.has_value() && b->ok());
  EXPECT_EQ(b->value().body, "two");
}

}  // namespace
}  // namespace dynaprox::http
