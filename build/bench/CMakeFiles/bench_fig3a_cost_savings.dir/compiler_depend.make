# Empty compiler generated dependencies file for bench_fig3a_cost_savings.
# This may be replaced when dependencies are built.
