# Empty compiler generated dependencies file for dynaprox_edge.
# This may be replaced when dependencies are built.
