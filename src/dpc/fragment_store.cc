#include "dpc/fragment_store.h"

namespace dynaprox::dpc {

Status FragmentStore::Set(bem::DpcKey key, std::string content) {
  return Set(key,
             std::make_shared<const std::string>(std::move(content)));
}

Status FragmentStore::Set(bem::DpcKey key, FragmentRef content) {
  DYNAPROX_RETURN_IF_ERROR(SetLocked(key, std::move(content), SlotMeta{}));
  ShardFor(key).sets.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status FragmentStore::SetPushed(bem::DpcKey key, FragmentRef content,
                                MicroTime base_age_micros,
                                MicroTime now_micros) {
  SlotMeta meta;
  meta.pushed = true;
  meta.base_age = base_age_micros;
  meta.stored_at = now_micros;
  DYNAPROX_RETURN_IF_ERROR(SetLocked(key, std::move(content), meta));
  ShardFor(key).pushes.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status FragmentStore::SetLocked(bem::DpcKey key, FragmentRef content,
                                SlotMeta meta) {
  if (key >= slots_.size()) {
    return Status::InvalidArgument("dpcKey out of range: " +
                                   std::to_string(key));
  }
  if (content == nullptr) {
    return Status::InvalidArgument("null fragment for dpcKey " +
                                   std::to_string(key));
  }
  FragmentRef fresh = std::move(content);
  size_t fresh_bytes = fresh->size();
  size_t evicted_bytes = 0;
  bool replaced = false;
  bool was_pushed = false;
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    FragmentRef& slot = slots_[key];
    if (slot != nullptr) {
      evicted_bytes = slot->size();
      replaced = true;
    }
    was_pushed = meta_[key].pushed;
    slot = std::move(fresh);
    meta_[key] = meta;
  }
  if (!replaced) shard.occupied.fetch_add(1, std::memory_order_relaxed);
  if (meta.pushed && !was_pushed) {
    shard.pushed.fetch_add(1, std::memory_order_relaxed);
  } else if (!meta.pushed && was_pushed) {
    shard.pushed.fetch_sub(1, std::memory_order_relaxed);
  }
  shard.content_bytes.fetch_add(fresh_bytes - evicted_bytes,
                                std::memory_order_relaxed);
  return Status::Ok();
}

Result<MicroTime> FragmentStore::AgeOf(bem::DpcKey key,
                                       MicroTime now_micros) {
  if (key >= slots_.size()) {
    return Status::InvalidArgument("dpcKey out of range: " +
                                   std::to_string(key));
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (slots_[key] == nullptr) {
    return Status::NotFound("empty DPC slot: " + std::to_string(key));
  }
  const SlotMeta& meta = meta_[key];
  if (!meta.pushed) return MicroTime{0};
  return meta.base_age + (now_micros - meta.stored_at);
}

Result<FragmentRef> FragmentStore::Get(bem::DpcKey key) {
  if (key >= slots_.size()) {
    return Status::InvalidArgument("dpcKey out of range: " +
                                   std::to_string(key));
  }
  Shard& shard = ShardFor(key);
  shard.gets.fetch_add(1, std::memory_order_relaxed);
  FragmentRef ref;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    ref = slots_[key];
  }
  if (ref == nullptr) {
    shard.get_misses.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("empty DPC slot: " + std::to_string(key));
  }
  return ref;
}

void FragmentStore::Clear() {
  // Take every shard so concurrent Sets can't interleave with the sweep.
  std::array<std::unique_lock<std::mutex>, kShards> locks;
  for (size_t i = 0; i < kShards; ++i) {
    locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
  }
  for (FragmentRef& slot : slots_) slot.reset();
  for (SlotMeta& meta : meta_) meta = SlotMeta{};
  for (Shard& shard : shards_) {
    shard.occupied.store(0, std::memory_order_relaxed);
    shard.content_bytes.store(0, std::memory_order_relaxed);
    shard.pushed.store(0, std::memory_order_relaxed);
  }
}

size_t FragmentStore::occupied_slots() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.occupied.load(std::memory_order_relaxed);
  }
  return total;
}

size_t FragmentStore::pushed_slots() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.pushed.load(std::memory_order_relaxed);
  }
  return total;
}

size_t FragmentStore::shard_content_bytes(size_t shard) const {
  return shards_[shard].content_bytes.load(std::memory_order_relaxed);
}

size_t FragmentStore::content_bytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.content_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

StoreStats FragmentStore::stats() const {
  StoreStats snapshot;
  for (const Shard& shard : shards_) {
    snapshot.sets += shard.sets.load(std::memory_order_relaxed);
    snapshot.gets += shard.gets.load(std::memory_order_relaxed);
    snapshot.get_misses += shard.get_misses.load(std::memory_order_relaxed);
    snapshot.pushes += shard.pushes.load(std::memory_order_relaxed);
  }
  return snapshot;
}

}  // namespace dynaprox::dpc
