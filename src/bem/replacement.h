#ifndef DYNAPROX_BEM_REPLACEMENT_H_
#define DYNAPROX_BEM_REPLACEMENT_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace dynaprox::bem {

// Victim-selection policy for the cache replacement manager (paper 4.3.3:
// "a cache replacement manager ... selects fragments for replacement when
// the directory size exceeds some specified threshold"). The policy tracks
// valid directory entries by canonical fragment id.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  // A fragment entered the directory (miss path).
  virtual void OnInsert(const std::string& fragment_id) = 0;
  // A fragment was served from cache (hit path).
  virtual void OnAccess(const std::string& fragment_id) = 0;
  // A fragment was invalidated or evicted; forget it.
  virtual void OnRemove(const std::string& fragment_id) = 0;

  // Picks the fragment to evict. Fails when no candidates are tracked.
  virtual Result<std::string> PickVictim() = 0;

  virtual std::string_view name() const = 0;
};

// Least-recently-used: evicts the entry whose last insert/access is oldest.
class LruPolicy : public ReplacementPolicy {
 public:
  void OnInsert(const std::string& fragment_id) override;
  void OnAccess(const std::string& fragment_id) override;
  void OnRemove(const std::string& fragment_id) override;
  Result<std::string> PickVictim() override;
  std::string_view name() const override { return "lru"; }

 private:
  void Touch(const std::string& fragment_id);

  std::list<std::string> order_;  // Front = most recent.
  std::map<std::string, std::list<std::string>::iterator> index_;
};

// First-in-first-out: evicts the oldest inserted entry; accesses are
// ignored.
class FifoPolicy : public ReplacementPolicy {
 public:
  void OnInsert(const std::string& fragment_id) override;
  void OnAccess(const std::string& /*fragment_id*/) override {}
  void OnRemove(const std::string& fragment_id) override;
  Result<std::string> PickVictim() override;
  std::string_view name() const override { return "fifo"; }

 private:
  std::list<std::string> order_;  // Front = oldest.
  std::map<std::string, std::list<std::string>::iterator> index_;
};

// CLOCK (second-chance): approximates LRU with one reference bit per entry
// and a rotating hand.
class ClockPolicy : public ReplacementPolicy {
 public:
  void OnInsert(const std::string& fragment_id) override;
  void OnAccess(const std::string& fragment_id) override;
  void OnRemove(const std::string& fragment_id) override;
  Result<std::string> PickVictim() override;
  std::string_view name() const override { return "clock"; }

 private:
  struct Entry {
    std::string fragment_id;
    bool referenced;
  };
  std::vector<Entry> ring_;
  std::map<std::string, size_t> index_;  // fragment_id -> ring slot.
  size_t hand_ = 0;
};

// Factory by policy name ("lru", "fifo", "clock"); InvalidArgument
// otherwise.
Result<std::unique_ptr<ReplacementPolicy>> MakeReplacementPolicy(
    std::string_view name);

}  // namespace dynaprox::bem

#endif  // DYNAPROX_BEM_REPLACEMENT_H_
