# Empty compiler generated dependencies file for dynaprox_sim.
# This may be replaced when dependencies are built.
