// Figure 3(b): B_C / B_NC vs fragment size — analytical curve plus the
// *experimental* curve measured on the simulated testbed (Sniffer-style
// wire bytes including protocol headers). Paper shape: experimental tracks
// analytical from above, converging as fragments grow.

#include <cstdio>

#include "analytical/model.h"
#include "bench_util.h"
#include "sim/experiment.h"

int main() {
  using dynaprox::analytical::ModelParams;
  using dynaprox::sim::ExperimentConfig;
  using dynaprox::sim::ExperimentResult;
  using dynaprox::sim::RunBytesExperiment;

  ModelParams params = ModelParams::Table2Baseline();
  dynaprox::benchutil::PrintHeader(
      "Figure 3(b)",
      "Bytes Served Cache/No-Cache vs Fragment Size (analytical + "
      "experimental)",
      params);
  std::printf(
      "note: requests scaled to 8000/point (ratios are scale-free; the "
      "paper's R=1M only narrows variance)\n");

  std::printf("%10s %12s %14s %14s %12s\n", "fragKB", "analytical",
              "exp(payload)", "exp(wire)", "hitRatio");
  for (double frag_kb : {0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}) {
    ExperimentConfig config;
    config.params = params;
    config.params.fragment_size = frag_kb * 1000.0;
    config.warmup_requests = 1000;
    config.measured_requests = 8000;
    dynaprox::Result<ExperimentResult> result = RunBytesExperiment(config);
    if (!result.ok()) {
      std::printf("point %.2f failed: %s\n", frag_kb,
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("%10.2f %12.4f %14.4f %14.4f %12.3f\n", frag_kb,
                result->analytic_ratio, result->measured_payload_ratio,
                result->measured_wire_ratio, result->realized_hit_ratio);
  }
  dynaprox::benchutil::PrintFooter();
  return 0;
}
