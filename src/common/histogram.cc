#include "common/histogram.h"

#include <algorithm>
#include <cmath>

namespace dynaprox {

void Histogram::Record(double value) {
  samples_.push_back(value);
  sorted_ = false;
  sum_ += value;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::min() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.front();
}

double Histogram::max() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.back();
}

double Histogram::mean() const {
  return samples_.empty() ? 0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  p = std::clamp(p, 0.0, 1.0);
  size_t rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(samples_.size())));
  if (rank > 0) --rank;
  return samples_[std::min(rank, samples_.size() - 1)];
}

void Histogram::Merge(const Histogram& other) {
  if (&other == this) {
    // Self-merge: inserting a vector's own range into itself invalidates
    // the source iterators mid-copy. Double the samples explicitly.
    std::vector<double> copy = samples_;
    samples_.insert(samples_.end(), copy.begin(), copy.end());
  } else {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }
  sum_ += other.sum_;
  sorted_ = samples_.empty();
}

void Histogram::Clear() {
  samples_.clear();
  sorted_ = true;
  sum_ = 0;
}

}  // namespace dynaprox
