#include "bem/cache_directory.h"

#include <cassert>

#include "common/logging.h"

namespace dynaprox::bem {

CacheDirectory::CacheDirectory(DpcKey capacity, const Clock* clock,
                               std::unique_ptr<ReplacementPolicy> policy)
    : clock_(clock),
      policy_(std::move(policy)),
      free_list_(capacity),
      key_owner_(capacity) {
  assert(clock_ != nullptr);
  assert(policy_ != nullptr);
}

bool CacheDirectory::Expired(const Entry& entry) const {
  return entry.ttl_micros > 0 &&
         clock_->NowMicros() - entry.inserted_at >= entry.ttl_micros;
}

void CacheDirectory::InvalidateEntry(const std::string& canonical,
                                     Entry& entry, bool pin_key) {
  assert(entry.is_valid);
  entry.is_valid = false;
  --valid_count_;
  policy_->OnRemove(canonical);
  // The key goes to the back of the free list; the DPC is *not* told
  // (paper 4.3.3: "No action is taken by the DPC"). A refresh-pinned key
  // goes to the front instead: the DPC explicitly asked for this key to
  // be regenerated, so the immediate re-render must reuse it.
  Status released = pin_key ? free_list_.ReleaseFront(entry.key)
                            : free_list_.Release(entry.key);
  assert(released.ok());
  (void)released;
}

void CacheDirectory::ReclaimKeyOwner(DpcKey key) {
  std::string& owner = key_owner_[key];
  if (owner.empty()) return;
  auto it = entries_.find(owner);
  // Erase the stale entry only if it still is the invalid incarnation that
  // released this key. (The owner record can be outdated: the fragment may
  // have been re-inserted since under a different key, overwriting its
  // entry — in that case the entry is valid and must be kept.)
  if (it != entries_.end() && !it->second.is_valid &&
      it->second.key == key) {
    entries_.erase(it);
  }
  owner.clear();
}

LookupResult CacheDirectory::Lookup(const FragmentId& id) {
  std::string canonical = id.Canonical();
  auto it = entries_.find(canonical);
  if (it == entries_.end()) {
    ++stats_.misses;
    return {LookupOutcome::kMissAbsent};
  }
  Entry& entry = it->second;
  if (!entry.is_valid) {
    ++stats_.misses;
    return {LookupOutcome::kMissInvalid};
  }
  if (Expired(entry)) {
    ++stats_.ttl_invalidations;
    ++stats_.misses;
    InvalidateEntry(canonical, entry);
    return {LookupOutcome::kMissExpired};
  }
  ++stats_.hits;
  policy_->OnAccess(canonical);
  return {LookupOutcome::kHit, entry.key};
}

Result<DpcKey> CacheDirectory::Insert(const FragmentId& id,
                                      MicroTime ttl_micros) {
  std::string canonical = id.Canonical();

  // Re-inserting a valid fragment (e.g. forced refresh) releases its key
  // first so it flows through the normal allocation path.
  if (auto it = entries_.find(canonical);
      it != entries_.end() && it->second.is_valid) {
    ++stats_.explicit_invalidations;
    InvalidateEntry(canonical, it->second);
  }

  Result<DpcKey> key = free_list_.Allocate();
  if (!key.ok()) {
    // Replacement manager: evict a victim to free a key (paper 4.3.3).
    Result<std::string> victim = policy_->PickVictim();
    if (!victim.ok()) {
      return Status::CapacityExceeded(
          "directory full and no replacement candidate");
    }
    ++stats_.evictions;
    DYNAPROX_RETURN_IF_ERROR(InvalidateCanonical(*victim));
    key = free_list_.Allocate();
    if (!key.ok()) return key.status();
  }

  // The allocated key may still be referenced by a stale invalid entry
  // (possibly this very fragment's previous incarnation); reclaim it.
  ReclaimKeyOwner(*key);

  entries_[canonical] =
      Entry{*key, /*is_valid=*/true, ttl_micros, clock_->NowMicros()};
  key_owner_[*key] = canonical;
  ++valid_count_;
  ++stats_.inserts;
  policy_->OnInsert(canonical);
  DYNAPROX_LOG(kDebug, "bem") << "insert " << canonical << " -> key " << *key;
  return *key;
}

Status CacheDirectory::Invalidate(const FragmentId& id) {
  return InvalidateCanonical(id.Canonical());
}

Status CacheDirectory::InvalidateCanonical(const std::string& canonical) {
  auto it = entries_.find(canonical);
  if (it == entries_.end() || !it->second.is_valid) {
    return Status::NotFound("no valid entry: " + canonical);
  }
  ++stats_.explicit_invalidations;
  InvalidateEntry(canonical, it->second);
  return Status::Ok();
}

Result<std::string> CacheDirectory::InvalidateKey(DpcKey key, bool pin_key) {
  if (key >= key_owner_.size()) {
    return Status::InvalidArgument("dpcKey out of range: " +
                                   std::to_string(key));
  }
  const std::string owner = key_owner_[key];
  if (owner.empty()) {
    return Status::NotFound("key has no owner: " + std::to_string(key));
  }
  auto it = entries_.find(owner);
  if (it == entries_.end() || !it->second.is_valid ||
      it->second.key != key) {
    return Status::NotFound("key has no valid owner: " + std::to_string(key));
  }
  ++stats_.explicit_invalidations;
  InvalidateEntry(owner, it->second, pin_key);
  return owner;
}

size_t CacheDirectory::InvalidateAll() {
  size_t count = 0;
  for (auto& [canonical, entry] : entries_) {
    if (!entry.is_valid) continue;
    ++stats_.explicit_invalidations;
    InvalidateEntry(canonical, entry);
    ++count;
  }
  return count;
}

size_t CacheDirectory::SweepExpired() {
  size_t count = 0;
  for (auto& [canonical, entry] : entries_) {
    if (!entry.is_valid || !Expired(entry)) continue;
    ++stats_.ttl_invalidations;
    InvalidateEntry(canonical, entry);
    ++count;
  }
  return count;
}

std::vector<CacheDirectory::EntryView> CacheDirectory::SnapshotEntries(
    size_t limit) const {
  std::vector<EntryView> out;
  MicroTime now = clock_->NowMicros();
  for (const auto& [canonical, entry] : entries_) {
    out.push_back({canonical, entry.key, entry.is_valid,
                   now - entry.inserted_at, entry.ttl_micros});
    if (limit != 0 && out.size() >= limit) break;
  }
  return out;
}

Result<DpcKey> CacheDirectory::KeyOf(const FragmentId& id) const {
  auto it = entries_.find(id.Canonical());
  if (it == entries_.end() || !it->second.is_valid) {
    return Status::NotFound("no valid entry: " + id.Canonical());
  }
  return it->second.key;
}

}  // namespace dynaprox::bem
