#include "baseline/esi.h"

namespace dynaprox::baseline {

EsiPart EsiPart::Literal(std::string markup) {
  EsiPart part;
  part.kind = Kind::kLiteral;
  part.text = std::move(markup);
  return part;
}

EsiPart EsiPart::Include(std::string path, MicroTime ttl_micros,
                         bool forward_query) {
  EsiPart part;
  part.kind = Kind::kInclude;
  part.fragment_path = std::move(path);
  part.ttl_micros = ttl_micros;
  part.forward_query = forward_query;
  return part;
}

void EsiRegistry::Register(const std::string& path,
                           EsiTemplate page_template) {
  templates_[path] = std::move(page_template);
}

Result<const EsiTemplate*> EsiRegistry::Find(const std::string& path) const {
  auto it = templates_.find(path);
  if (it == templates_.end()) {
    return Status::NotFound("no template for path: " + path);
  }
  return &it->second;
}

EsiAssembler::EsiAssembler(const EsiRegistry* registry,
                           net::Transport* origin, EsiOptions options)
    : registry_(registry), origin_(origin), options_(options) {
  if (options_.clock == nullptr) options_.clock = SystemClock::Default();
}

net::Handler EsiAssembler::AsHandler() {
  return [this](const http::Request& request) { return Handle(request); };
}

void EsiAssembler::ResolveInclude(const EsiPart& part,
                                  const http::Request& request,
                                  std::string& page) {
  std::string url = part.fragment_path;
  if (part.forward_query && !request.QueryString().empty()) {
    url += '?';
    url += request.QueryString();
  }

  auto it = fragments_.find(url);
  if (it != fragments_.end()) {
    bool expired = part.ttl_micros > 0 &&
                   options_.clock->NowMicros() - it->second.cached_at >=
                       part.ttl_micros;
    if (!expired) {
      ++stats_.fragment_cache_hits;
      page += it->second.content;
      return;
    }
    fragments_.erase(it);
  }

  ++stats_.fragment_origin_fetches;
  http::Request fragment_request;
  fragment_request.method = "GET";
  fragment_request.target = url;
  // Cookies are forwarded (real assemblers do), but note the cache key
  // above is the URL alone — the correctness hazard Section 3 describes.
  if (auto cookie = request.headers.Get("Cookie"); cookie.has_value()) {
    fragment_request.headers.Add("Cookie", std::string(*cookie));
  }
  Result<http::Response> response = origin_->RoundTrip(fragment_request);
  if (!response.ok() || response->status_code != 200) {
    ++stats_.fragment_errors;
    return;  // Include contributes nothing; page renders degraded.
  }
  stats_.bytes_from_upstream += response->body.size();
  fragments_[url] =
      CachedFragment{response->body, options_.clock->NowMicros()};
  page += response->body;
}

http::Response EsiAssembler::Handle(const http::Request& request) {
  ++stats_.page_requests;
  Result<const EsiTemplate*> page_template =
      registry_->Find(std::string(request.Path()));
  if (!page_template.ok()) {
    // No template: plain proxying.
    Result<http::Response> response = origin_->RoundTrip(request);
    if (!response.ok()) {
      return http::Response::MakeError(502, "Bad Gateway",
                                       response.status().ToString());
    }
    stats_.bytes_from_upstream += response->body.size();
    return std::move(*response);
  }

  std::string page;
  for (const EsiPart& part : (*page_template)->parts) {
    if (part.kind == EsiPart::Kind::kLiteral) {
      page += part.text;
    } else {
      ResolveInclude(part, request, page);
    }
  }
  return http::Response::MakeOk(std::move(page));
}

size_t EsiAssembler::InvalidateAll() {
  size_t count = fragments_.size();
  fragments_.clear();
  return count;
}

bool EsiAssembler::InvalidateFragmentUrl(const std::string& url) {
  return fragments_.erase(url) > 0;
}

}  // namespace dynaprox::baseline
