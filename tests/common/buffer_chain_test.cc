#include "common/buffer_chain.h"

#include <sys/uio.h>

#include <string>
#include <string_view>

#include "gtest/gtest.h"

namespace dynaprox::common {
namespace {

TEST(BufferChainTest, DefaultIsEmpty) {
  BufferChain chain;
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.size(), 0u);
  EXPECT_EQ(chain.slice_count(), 0u);
  EXPECT_EQ(chain.Flatten(), "");
  EXPECT_TRUE(chain.ContentEquals(""));
  struct iovec iov[4];
  EXPECT_EQ(chain.FillIovecs(0, iov, 4), 0u);
}

TEST(BufferChainTest, AppendWholeBufferAliasesBytes) {
  Buffer buffer = MakeBuffer("hello world");
  BufferChain chain;
  chain.Append(buffer);
  ASSERT_EQ(chain.slice_count(), 1u);
  EXPECT_EQ(chain.size(), 11u);
  // Zero-copy: the slice points at the buffer's own storage.
  EXPECT_EQ(chain.slices()[0].data, buffer->data());
  EXPECT_EQ(chain.slices()[0].buffer.get(), buffer.get());
  EXPECT_EQ(chain.Flatten(), "hello world");
}

TEST(BufferChainTest, AppendSliceAliasesSubrange) {
  Buffer buffer = MakeBuffer("abcdefgh");
  std::string_view middle(buffer->data() + 2, 4);
  BufferChain chain;
  chain.Append(buffer, middle);
  ASSERT_EQ(chain.slice_count(), 1u);
  EXPECT_EQ(chain.slices()[0].data, buffer->data() + 2);
  EXPECT_EQ(chain.Flatten(), "cdef");
}

TEST(BufferChainTest, ContiguousSlicesCoalesce) {
  Buffer buffer = MakeBuffer("abcdefgh");
  BufferChain chain;
  chain.Append(buffer, std::string_view(buffer->data(), 3));
  chain.Append(buffer, std::string_view(buffer->data() + 3, 5));
  EXPECT_EQ(chain.slice_count(), 1u);
  EXPECT_EQ(chain.size(), 8u);
  EXPECT_EQ(chain.Flatten(), "abcdefgh");
}

TEST(BufferChainTest, NonContiguousSlicesStaySeparate) {
  Buffer buffer = MakeBuffer("abcdefgh");
  BufferChain chain;
  chain.Append(buffer, std::string_view(buffer->data(), 3));
  chain.Append(buffer, std::string_view(buffer->data() + 5, 3));  // Gap.
  EXPECT_EQ(chain.slice_count(), 2u);
  EXPECT_EQ(chain.Flatten(), "abcfgh");
}

TEST(BufferChainTest, OneBufferMayAppearManyTimes) {
  Buffer fragment = MakeBuffer("frag");
  BufferChain chain;
  chain.AppendCopy("<");
  chain.Append(fragment);
  chain.AppendCopy("|");
  chain.Append(fragment);
  chain.AppendCopy(">");
  EXPECT_EQ(chain.Flatten(), "<frag|frag>");
  // Both splices alias the same storage — stored once, referenced twice.
  EXPECT_EQ(chain.slices()[1].data, chain.slices()[3].data);
  EXPECT_EQ(chain.slices()[1].data, fragment->data());
}

TEST(BufferChainTest, SpliceMovesSlicesWithoutCopying) {
  Buffer a = MakeBuffer("aaa");
  Buffer b = MakeBuffer("bbb");
  BufferChain head;
  head.Append(a);
  BufferChain tail;
  tail.Append(b);
  const char* b_data = tail.slices()[0].data;
  head.Append(std::move(tail));
  ASSERT_EQ(head.slice_count(), 2u);
  EXPECT_EQ(head.slices()[1].data, b_data);
  EXPECT_EQ(head.Flatten(), "aaabbb");
}

TEST(BufferChainTest, ChainKeepsBufferAliveAfterOwnerReleases) {
  BufferChain chain;
  {
    Buffer buffer = MakeBuffer("still here");
    chain.Append(buffer);
  }  // Last external reference gone — models a store slot being evicted.
  EXPECT_EQ(chain.Flatten(), "still here");
  EXPECT_EQ(chain.slices()[0].buffer.use_count(), 1);
}

TEST(BufferChainTest, CopyingAChainSharesBuffersNotBytes) {
  Buffer buffer = MakeBuffer("shared");
  BufferChain chain;
  chain.Append(buffer);
  BufferChain copy = chain;
  EXPECT_EQ(copy.slices()[0].data, chain.slices()[0].data);
  EXPECT_EQ(buffer.use_count(), 3);  // owner + chain + copy
  chain.Clear();
  EXPECT_EQ(copy.Flatten(), "shared");
  EXPECT_TRUE(chain.empty());
}

TEST(BufferChainTest, ContentEqualsComparesAcrossSliceBoundaries) {
  BufferChain chain;
  chain.AppendCopy("abc");
  chain.AppendCopy("def");
  EXPECT_TRUE(chain.ContentEquals("abcdef"));
  EXPECT_FALSE(chain.ContentEquals("abcdeX"));
  EXPECT_FALSE(chain.ContentEquals("abcde"));
  EXPECT_FALSE(chain.ContentEquals("abcdefg"));
}

TEST(BufferChainTest, AppendToExtendsExistingString) {
  BufferChain chain;
  chain.AppendCopy("tail");
  std::string out = "head-";
  chain.AppendTo(out);
  EXPECT_EQ(out, "head-tail");
}

TEST(BufferChainTest, FillIovecsCoversWholeChain) {
  BufferChain chain;
  chain.AppendCopy("abc");
  chain.AppendCopy("defgh");
  struct iovec iov[4];
  size_t count = chain.FillIovecs(0, iov, 4);
  ASSERT_EQ(count, 2u);
  EXPECT_EQ(std::string_view(static_cast<char*>(iov[0].iov_base),
                             iov[0].iov_len),
            "abc");
  EXPECT_EQ(std::string_view(static_cast<char*>(iov[1].iov_base),
                             iov[1].iov_len),
            "defgh");
}

TEST(BufferChainTest, FillIovecsMidSliceOffsetYieldsPartialFirstEntry) {
  BufferChain chain;
  chain.AppendCopy("abc");
  chain.AppendCopy("defgh");
  struct iovec iov[4];
  // Offset 5 lands two bytes into the second slice.
  size_t count = chain.FillIovecs(5, iov, 4);
  ASSERT_EQ(count, 1u);
  EXPECT_EQ(std::string_view(static_cast<char*>(iov[0].iov_base),
                             iov[0].iov_len),
            "fgh");
  // Offset 2 is mid-first-slice: partial first entry, full second.
  count = chain.FillIovecs(2, iov, 4);
  ASSERT_EQ(count, 2u);
  EXPECT_EQ(std::string_view(static_cast<char*>(iov[0].iov_base),
                             iov[0].iov_len),
            "c");
  EXPECT_EQ(iov[1].iov_len, 5u);
}

TEST(BufferChainTest, FillIovecsHonorsMaxAndExhaustedOffsets) {
  BufferChain chain;
  chain.AppendCopy("a");
  chain.AppendCopy("b");
  chain.AppendCopy("c");
  struct iovec iov[4];
  EXPECT_EQ(chain.FillIovecs(0, iov, 2), 2u);  // Clamped to max.
  EXPECT_EQ(chain.FillIovecs(chain.size(), iov, 4), 0u);
  EXPECT_EQ(chain.FillIovecs(chain.size() + 10, iov, 4), 0u);
}

}  // namespace
}  // namespace dynaprox::common
