#ifndef DYNAPROX_NET_SERVER_LIMITS_H_
#define DYNAPROX_NET_SERVER_LIMITS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "http/parser.h"
#include "net/transport.h"

namespace dynaprox::metrics {
class Registry;
}
namespace dynaprox {
class JsonWriter;
}

namespace dynaprox::net {

// Ingress accounting shared by TcpServer and EpollServer: connection and
// in-flight gauges plus one counter per limit-violation reason. All fields
// are relaxed atomics — servers bump them on the serving path with no
// lock, the same pattern as the DPC's serving counters. The struct is
// caller-ownable (see ServerLimits::counters) so a tool can create it
// before both the server and the proxy/origin that exports it.
struct IngressCounters {
  // Gauges.
  std::atomic<int64_t> open_connections{0};
  std::atomic<int64_t> inflight_requests{0};
  // Counters, one per admission decision / limit violation.
  std::atomic<uint64_t> accepted_total{0};
  std::atomic<uint64_t> connection_limit_rejections{0};  // Closed at accept.
  std::atomic<uint64_t> shed_503s{0};          // Over max_inflight: 503 sent.
  std::atomic<uint64_t> header_timeouts{0};    // Slowloris disconnects.
  std::atomic<uint64_t> idle_timeouts{0};      // Keep-alive idle reaps.
  std::atomic<uint64_t> write_stall_closes{0};  // Client stopped reading.
  std::atomic<uint64_t> oversize_headers{0};   // 431 sent.
  std::atomic<uint64_t> oversize_bodies{0};    // 413 sent.
  std::atomic<uint64_t> drained_connections{0};  // Finished during drain.
  // Accept hit EMFILE/ENFILE. Counts *episodes* (entries into the
  // exhausted state), not failed accept() calls: during one sustained
  // exhaustion the servers log once and count once, and both re-arm when
  // an accept succeeds again.
  std::atomic<uint64_t> accept_fd_exhaustion_episodes{0};
};

// Ingress-protection configuration shared by both server implementations.
// Every limit defaults to 0 = off, so a default-constructed server
// behaves exactly as before the limits existed.
struct ServerLimits {
  // Concurrent client connections admitted; excess accepts are closed
  // immediately (counted, never served).
  int max_connections = 0;
  // Concurrent requests inside handlers; excess requests are shed with
  // 503 + Retry-After without invoking the handler.
  int max_inflight = 0;
  // Byte caps enforced by the per-connection http::RequestReader: an
  // over-cap header section answers 431, a declared Content-Length over
  // the body cap answers 413 — both before the bytes are buffered.
  size_t max_header_bytes = 0;
  size_t max_body_bytes = 0;
  // Slowloris defense: a connection that has started a request (first
  // byte seen) must deliver the complete request within this budget.
  MicroTime header_timeout_micros = 0;
  // Keep-alive connections idle longer than this are closed.
  MicroTime idle_timeout_micros = 0;
  // A connection whose pending response bytes make no progress for this
  // long (client stopped reading) is closed.
  MicroTime write_stall_micros = 0;
  // Retry-After value on shed 503 responses.
  int64_t retry_after_seconds = 1;
  // Where to account admissions/violations. Not owned; may be null (the
  // server then uses an internal instance, see TcpServer/EpollServer
  // ::ingress()). Must outlive the server when set.
  IngressCounters* counters = nullptr;
};

// The one way dynaprox says "try again later": a 503 whose body carries
// `reason` and which always sets Retry-After so clients can back off.
// Every unavailability path funnels here — ingress shed (max_inflight),
// DPC degraded/breaker-open 503s, and the edge tier's all-nodes-down
// 503 — so no caller can forget the header; the call sites stay
// distinguishable via their own counters and access-log outcomes.
http::Response MakeUnavailableResponse(const std::string& reason,
                                       int64_t retry_after_seconds);

// The 503 sent when in-flight admission sheds a request.
http::Response MakeShedResponse(int64_t retry_after_seconds);

// Maps a failed RequestReader to the response that closes the
// conversation: 431 for a header-cap violation, 413 for a body-cap
// violation, 400 otherwise — and bumps the matching counter.
http::Response ResponseForReaderError(
    http::RequestReader::LimitViolation violation, const Status& error,
    IngressCounters& counters);

// Runs `handler` under the in-flight admission gate: over
// `limits.max_inflight` concurrent requests, the handler is skipped and a
// shed 503 returned instead. Maintains the inflight_requests gauge.
http::Response DispatchAdmitted(const Handler& handler,
                                const http::Request& request,
                                const ServerLimits& limits,
                                IngressCounters& counters);

// Registers the ingress gauges/counters as callback metrics under
// "<prefix>ingress_*" (prefix "dynaprox_" on the DPC, "dynaprox_origin_"
// on the origin). `counters` is sampled at scrape time; not owned.
void RegisterIngressMetrics(metrics::Registry& registry,
                            const std::string& prefix,
                            const IngressCounters* counters);

// Writes the "ingress" status-document block (gauges + violation
// counters); the caller owns the enclosing object.
void WriteIngressStatusBlock(JsonWriter& json,
                             const IngressCounters& counters);

}  // namespace dynaprox::net

#endif  // DYNAPROX_NET_SERVER_LIMITS_H_
