#include "http/parser.h"

#include <gtest/gtest.h>

namespace dynaprox::http {
namespace {

TEST(ParseRequestTest, RoundTripsSerialize) {
  Request original;
  original.method = "POST";
  original.target = "/page?id=3";
  original.headers.Add("Host", "example.com");
  original.body = "payload";
  Result<Request> parsed = ParseRequest(original.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->target, "/page?id=3");
  EXPECT_EQ(*parsed->headers.Get("Host"), "example.com");
  EXPECT_EQ(parsed->body, "payload");
}

TEST(ParseRequestTest, RejectsMalformedRequestLine) {
  EXPECT_FALSE(ParseRequest("GET /x\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequest("GET  HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequest("GET /x FTP/1.1\r\n\r\n").ok());
}

TEST(ParseRequestTest, RejectsMissingHeaderTerminator) {
  EXPECT_FALSE(ParseRequest("GET /x HTTP/1.1\r\nHost: h\r\n").ok());
}

TEST(ParseRequestTest, RejectsHeaderWithoutColon) {
  EXPECT_FALSE(
      ParseRequest("GET /x HTTP/1.1\r\nBadHeader\r\n\r\n").ok());
}

TEST(ParseRequestTest, RejectsBodyLengthMismatch) {
  EXPECT_FALSE(
      ParseRequest("GET /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nabc").ok());
  EXPECT_FALSE(
      ParseRequest("GET /x HTTP/1.1\r\nContent-Length: 1\r\n\r\nabc").ok());
}

TEST(ParseRequestTest, RejectsBadContentLength) {
  EXPECT_FALSE(
      ParseRequest("GET /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n").ok());
}

TEST(ParseResponseTest, RoundTripsSerialize) {
  Response original;
  original.status_code = 404;
  original.reason = "Not Found";
  original.headers.Add("Content-Type", "text/plain");
  original.body = "missing";
  Result<Response> parsed = ParseResponse(original.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->status_code, 404);
  EXPECT_EQ(parsed->reason, "Not Found");
  EXPECT_EQ(parsed->body, "missing");
}

TEST(ParseResponseTest, AcceptsEmptyReason) {
  Result<Response> parsed =
      ParseResponse("HTTP/1.1 204\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->status_code, 204);
}

TEST(ParseResponseTest, RejectsBadStatusCode) {
  EXPECT_FALSE(ParseResponse("HTTP/1.1 abc OK\r\n\r\n").ok());
  EXPECT_FALSE(ParseResponse("HTTP/1.1 99 X\r\n\r\n").ok());
}

TEST(RequestReaderTest, NeedsMoreBytesThenParses) {
  RequestReader reader;
  std::string wire = "GET /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz";
  reader.Feed(wire.substr(0, 10));
  EXPECT_FALSE(reader.Next().has_value());
  reader.Feed(wire.substr(10, 20));
  EXPECT_FALSE(reader.Next().has_value());
  reader.Feed(wire.substr(30));
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  ASSERT_TRUE(next->ok());
  EXPECT_EQ(next->value().body, "xyz");
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(RequestReaderTest, ParsesPipelinedMessages) {
  RequestReader reader;
  Request a;
  a.target = "/a";
  Request b;
  b.target = "/b";
  b.body = "data";
  reader.Feed(a.Serialize() + b.Serialize());
  auto first = reader.Next();
  ASSERT_TRUE(first.has_value() && first->ok());
  EXPECT_EQ(first->value().target, "/a");
  auto second = reader.Next();
  ASSERT_TRUE(second.has_value() && second->ok());
  EXPECT_EQ(second->value().target, "/b");
  EXPECT_EQ(second->value().body, "data");
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(RequestReaderTest, StaysFailedAfterCorruptHead) {
  RequestReader reader;
  reader.Feed("NOT A REQUEST\r\n\r\n");
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->ok());
  EXPECT_TRUE(reader.failed());
  auto again = reader.Next();
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(again->ok());
}

TEST(ResponseReaderTest, ParsesStreamedResponse) {
  ResponseReader reader;
  Response response;
  response.body = std::string(1000, 'x');
  std::string wire = response.Serialize();
  for (size_t i = 0; i < wire.size(); i += 7) {
    reader.Feed(std::string_view(wire).substr(i, 7));
  }
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  ASSERT_TRUE(next->ok());
  EXPECT_EQ(next->value().body.size(), 1000u);
}

}  // namespace
}  // namespace dynaprox::http
