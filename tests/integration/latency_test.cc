#include "sim/latency.h"

#include <gtest/gtest.h>

namespace dynaprox::sim {
namespace {

analytical::ModelParams Baseline() {
  return analytical::ModelParams::Table2Baseline();
}

TEST(LatencyModelTest, CachingNeverSlowerAtBaseline) {
  LatencyParams latency;
  analytical::ModelParams params = Baseline();
  EXPECT_LT(ExpectedResponseTimeWithCacheMs(latency, params),
            ExpectedResponseTimeNoCacheMs(latency, params));
  EXPECT_GT(ExpectedSpeedup(latency, params), 1.0);
}

TEST(LatencyModelTest, SpeedupGrowsWithHitRatio) {
  LatencyParams latency;
  analytical::ModelParams params = Baseline();
  double previous = 0;
  for (double h : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    params.hit_ratio = h;
    double speedup = ExpectedSpeedup(latency, params);
    EXPECT_GT(speedup, previous);
    previous = speedup;
  }
}

TEST(LatencyModelTest, OrderOfMagnitudeClaimAtDeploymentSettings) {
  // The deployment claim (Sections 1/8): order-of-magnitude response-time
  // reduction. Realized when generation dominates and most fragment uses
  // hit: all fragments cacheable, h near 1.
  LatencyParams latency;
  latency.wan_rtt_ms = 0;  // Server-side latency, the deployment's metric.
  latency.wan_bytes_per_ms = 0;
  analytical::ModelParams params = Baseline();
  params.cacheability = 1.0;
  params.hit_ratio = 0.98;
  EXPECT_GE(ExpectedSpeedup(latency, params), 10.0);
}

TEST(LatencyModelTest, WanDominatedSetupsSeeSmallerWins) {
  // Reverse-proxy mode cannot shrink the WAN leg (Section 7); with a slow
  // user link the end-to-end speedup is bounded.
  LatencyParams latency;
  latency.wan_rtt_ms = 200;
  latency.wan_bytes_per_ms = 10;  // Dial-up-ish.
  analytical::ModelParams params = Baseline();
  params.cacheability = 1.0;
  params.hit_ratio = 1.0;
  EXPECT_LT(ExpectedSpeedup(latency, params), 3.0);
  EXPECT_GT(ExpectedSpeedup(latency, params), 1.0);
}

TEST(LatencyModelTest, DeterministicSamplingMatchesClosedForm) {
  LatencyParams latency;
  latency.stochastic = false;
  analytical::ModelParams params = Baseline();
  params.cacheability = 0.5;  // Exact per-page split (2 of 4).
  params.hit_ratio = 1.0;     // No Bernoulli noise.
  LatencyDistributions dist =
      SampleResponseTimes(latency, params, 500, 1);
  EXPECT_NEAR(dist.no_cache_ms.mean(),
              ExpectedResponseTimeNoCacheMs(latency, params), 1e-6);
  EXPECT_NEAR(dist.with_cache_ms.mean(),
              ExpectedResponseTimeWithCacheMs(latency, params), 1e-6);
}

TEST(LatencyModelTest, StochasticSamplingConvergesToExpectation) {
  LatencyParams latency;
  analytical::ModelParams params = Baseline();
  params.cacheability = 0.5;
  LatencyDistributions dist =
      SampleResponseTimes(latency, params, 20000, 7);
  EXPECT_EQ(dist.no_cache_ms.count(), 20000u);
  EXPECT_NEAR(dist.no_cache_ms.mean(),
              ExpectedResponseTimeNoCacheMs(latency, params),
              ExpectedResponseTimeNoCacheMs(latency, params) * 0.03);
  EXPECT_NEAR(dist.with_cache_ms.mean(),
              ExpectedResponseTimeWithCacheMs(latency, params),
              ExpectedResponseTimeWithCacheMs(latency, params) * 0.05);
  // Exponential generation produces a heavy tail: p99 well above mean.
  EXPECT_GT(dist.no_cache_ms.Percentile(0.99), dist.no_cache_ms.mean());
}

TEST(LatencyModelTest, TailShrinksWithCaching) {
  LatencyParams latency;
  analytical::ModelParams params = Baseline();
  params.cacheability = 1.0;
  params.hit_ratio = 0.95;
  LatencyDistributions dist =
      SampleResponseTimes(latency, params, 20000, 11);
  EXPECT_LT(dist.with_cache_ms.Percentile(0.5),
            dist.no_cache_ms.Percentile(0.5));
  EXPECT_LT(dist.with_cache_ms.Percentile(0.99),
            dist.no_cache_ms.Percentile(0.99));
}

}  // namespace
}  // namespace dynaprox::sim
