#include "bem/monitor.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "storage/table.h"

namespace dynaprox::bem {
namespace {

BemOptions Options(const Clock* clock, DpcKey capacity = 16) {
  BemOptions options;
  options.capacity = capacity;
  options.clock = clock;
  return options;
}

TEST(MonitorTest, CreateRejectsBadConfig) {
  BemOptions zero;
  zero.capacity = 0;
  EXPECT_FALSE(BackEndMonitor::Create(zero).ok());
  BemOptions bad_policy;
  bad_policy.replacement_policy = "magic";
  EXPECT_FALSE(BackEndMonitor::Create(bad_policy).ok());
}

TEST(MonitorTest, LookupInsertHitCycle) {
  SimClock clock;
  auto monitor = *BackEndMonitor::Create(Options(&clock));
  FragmentId id("navbar");
  EXPECT_FALSE(monitor->LookupFragment(id).hit());
  ASSERT_TRUE(monitor->InsertFragment(id).ok());
  EXPECT_TRUE(monitor->LookupFragment(id).hit());
}

TEST(MonitorTest, DefaultTtlApplies) {
  SimClock clock;
  BemOptions options = Options(&clock);
  options.default_ttl_micros = 10 * kMicrosPerSecond;
  auto monitor = *BackEndMonitor::Create(options);
  FragmentId id("f");
  ASSERT_TRUE(monitor->InsertFragment(id).ok());  // ttl = default.
  clock.AdvanceSeconds(11);
  EXPECT_EQ(monitor->LookupFragment(id).outcome,
            LookupOutcome::kMissExpired);
}

TEST(MonitorTest, ExplicitTtlOverridesDefault) {
  SimClock clock;
  BemOptions options = Options(&clock);
  options.default_ttl_micros = 1 * kMicrosPerSecond;
  auto monitor = *BackEndMonitor::Create(options);
  FragmentId id("f");
  ASSERT_TRUE(monitor->InsertFragment(id, 0).ok());  // 0 = no expiry.
  clock.AdvanceSeconds(100);
  EXPECT_TRUE(monitor->LookupFragment(id).hit());
}

TEST(MonitorTest, DataSourceUpdateInvalidatesDependents) {
  SimClock clock;
  storage::ContentRepository repository;
  storage::Table* products = repository.GetOrCreateTable("products");
  products->Upsert("p1", {});

  auto monitor = *BackEndMonitor::Create(Options(&clock));
  monitor->AttachRepository(&repository);

  FragmentId id("reco", {{"user", "bob"}});
  ASSERT_TRUE(monitor->InsertFragment(id).ok());
  monitor->AddDependency(id, "products", "p1");
  ASSERT_TRUE(monitor->LookupFragment(id).hit());

  // Mutating the row the fragment depends on invalidates it.
  products->Upsert("p1", {{"title", storage::Value(std::string("new"))}});
  EXPECT_EQ(monitor->LookupFragment(id).outcome,
            LookupOutcome::kMissInvalid);
}

TEST(MonitorTest, UnrelatedUpdateDoesNotInvalidate) {
  SimClock clock;
  storage::ContentRepository repository;
  storage::Table* products = repository.GetOrCreateTable("products");
  auto monitor = *BackEndMonitor::Create(Options(&clock));
  monitor->AttachRepository(&repository);

  FragmentId id("reco");
  ASSERT_TRUE(monitor->InsertFragment(id).ok());
  monitor->AddDependency(id, "products", "p1");
  products->Upsert("p2", {});
  EXPECT_TRUE(monitor->LookupFragment(id).hit());
}

TEST(MonitorTest, TableLevelDependency) {
  SimClock clock;
  storage::ContentRepository repository;
  storage::Table* headlines = repository.GetOrCreateTable("headlines");
  auto monitor = *BackEndMonitor::Create(Options(&clock));
  monitor->AttachRepository(&repository);

  FragmentId id("headlines");
  ASSERT_TRUE(monitor->InsertFragment(id).ok());
  monitor->AddDependency(id, "headlines");  // Any row.
  headlines->Upsert("h99", {});
  EXPECT_FALSE(monitor->LookupFragment(id).hit());
}

TEST(MonitorTest, DetachStopsInvalidation) {
  SimClock clock;
  storage::ContentRepository repository;
  storage::Table* t = repository.GetOrCreateTable("t");
  auto monitor = *BackEndMonitor::Create(Options(&clock));
  monitor->AttachRepository(&repository);
  FragmentId id("f");
  ASSERT_TRUE(monitor->InsertFragment(id).ok());
  monitor->AddDependency(id, "t");
  monitor->DetachRepository();
  t->Upsert("row", {});
  EXPECT_TRUE(monitor->LookupFragment(id).hit());
}

TEST(MonitorTest, ReinsertSupersedesOldDependencies) {
  SimClock clock;
  storage::ContentRepository repository;
  storage::Table* t = repository.GetOrCreateTable("t");
  auto monitor = *BackEndMonitor::Create(Options(&clock));
  monitor->AttachRepository(&repository);

  FragmentId id("f");
  ASSERT_TRUE(monitor->InsertFragment(id).ok());
  monitor->AddDependency(id, "t", "old-row");
  // Regenerate with a different dependency set.
  ASSERT_TRUE(monitor->InsertFragment(id).ok());
  monitor->AddDependency(id, "t", "new-row");

  t->Upsert("old-row", {});  // Stale dependency must not fire.
  EXPECT_TRUE(monitor->LookupFragment(id).hit());
  t->Upsert("new-row", {});
  EXPECT_FALSE(monitor->LookupFragment(id).hit());
}

TEST(MonitorTest, InvalidateKeyRemovesDependencies) {
  SimClock clock;
  storage::ContentRepository repository;
  storage::Table* t = repository.GetOrCreateTable("t");
  auto monitor = *BackEndMonitor::Create(Options(&clock));
  monitor->AttachRepository(&repository);

  FragmentId id("f");
  DpcKey key = *monitor->InsertFragment(id);
  monitor->AddDependency(id, "t");
  ASSERT_TRUE(monitor->InvalidateKey(key).ok());
  EXPECT_FALSE(monitor->LookupFragment(id).hit());
  EXPECT_EQ(monitor->dependencies().fragment_count(), 0u);
  // Re-running the update is harmless.
  t->Upsert("x", {});
}

TEST(MonitorTest, RefreshKeyKeepsTheKeyStable) {
  SimClock clock;
  auto monitor = *BackEndMonitor::Create(Options(&clock));
  FragmentId a("a"), b("b");
  ASSERT_TRUE(monitor->InsertFragment(a).ok());
  DpcKey key = *monitor->InsertFragment(b);
  ASSERT_TRUE(monitor->RefreshKey(key).ok());
  EXPECT_FALSE(monitor->LookupFragment(b).hit());
  // The refresh re-render re-caches the fragment under the SAME key — the
  // DPC's in-flight `GET key` stays resolvable.
  EXPECT_EQ(*monitor->InsertFragment(b), key);
}

TEST(MonitorTest, InvalidateAllClearsDirectoryAndDeps) {
  SimClock clock;
  auto monitor = *BackEndMonitor::Create(Options(&clock));
  for (int i = 0; i < 5; ++i) {
    FragmentId id("f" + std::to_string(i));
    ASSERT_TRUE(monitor->InsertFragment(id).ok());
    monitor->AddDependency(id, "t");
  }
  EXPECT_EQ(monitor->InvalidateAll(), 5u);
  EXPECT_EQ(monitor->directory().valid_count(), 0u);
  EXPECT_EQ(monitor->dependencies().fragment_count(), 0u);
}

TEST(MonitorTest, SnapshotEntriesReflectsDirectoryState) {
  SimClock clock;
  auto monitor = *BackEndMonitor::Create(Options(&clock));
  ASSERT_TRUE(monitor->InsertFragment(FragmentId("a"), 0).ok());
  ASSERT_TRUE(
      monitor->InsertFragment(FragmentId("b"), 5 * kMicrosPerSecond).ok());
  clock.AdvanceSeconds(2);
  ASSERT_TRUE(monitor->Invalidate(FragmentId("a")).ok());

  auto entries = monitor->SnapshotEntries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].fragment_id, "a");
  EXPECT_FALSE(entries[0].is_valid);
  EXPECT_EQ(entries[1].fragment_id, "b");
  EXPECT_TRUE(entries[1].is_valid);
  EXPECT_EQ(entries[1].age_micros, 2 * kMicrosPerSecond);
  EXPECT_EQ(entries[1].ttl_micros, 5 * kMicrosPerSecond);

  EXPECT_EQ(monitor->SnapshotEntries(1).size(), 1u);
}

TEST(MonitorTest, SweepExpiredCountsOnlyExpired) {
  SimClock clock;
  auto monitor = *BackEndMonitor::Create(Options(&clock));
  ASSERT_TRUE(
      monitor->InsertFragment(FragmentId("a"), kMicrosPerSecond).ok());
  ASSERT_TRUE(monitor->InsertFragment(FragmentId("b"), 0).ok());
  clock.AdvanceSeconds(2);
  EXPECT_EQ(monitor->SweepExpired(), 1u);
}

}  // namespace
}  // namespace dynaprox::bem
